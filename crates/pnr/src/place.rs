//! Row-based placement: connectivity-ordered initial placement refined
//! by simulated annealing on half-perimeter wirelength.

use std::fmt;

use secflow_rand::{RngExt, SeedableRng, StdRng};

use secflow_cells::{Library, ROW_TRACKS};
use secflow_netlist::{GateId, NetId, Netlist};

use crate::design::{PlacedCell, PlacedDesign};
use crate::floorplan::Floorplan;
use crate::grid::GridPitch;

/// Placement failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaceError {
    /// A gate references a cell that the library does not provide.
    UnknownCell {
        /// Instance name of the offending gate.
        gate: String,
        /// The unresolvable cell name.
        cell: String,
    },
    /// Placement options are degenerate (fill factor outside `(0, 1]`
    /// or non-positive aspect ratio).
    InvalidOptions {
        /// Human-readable description of the bad option.
        detail: String,
    },
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::UnknownCell { gate, cell } => {
                write!(f, "gate `{gate}` references unknown cell `{cell}`")
            }
            PlaceError::InvalidOptions { detail } => {
                write!(f, "invalid placement options: {detail}")
            }
        }
    }
}

impl std::error::Error for PlaceError {}

/// Placement configuration.
#[derive(Debug, Clone)]
pub struct PlaceOptions {
    /// Fraction of row area occupied by cells (paper: 0.8).
    pub fill_factor: f64,
    /// Die width / height (paper: 1.0).
    pub aspect_ratio: f64,
    /// Simulated-annealing moves per gate (0 disables refinement).
    pub anneal_moves_per_gate: usize,
    /// RNG seed for the annealer.
    pub seed: u64,
    /// Grid pitch recorded in the output (placement itself is
    /// pitch-agnostic).
    pub pitch: GridPitch,
}

impl Default for PlaceOptions {
    fn default() -> Self {
        PlaceOptions {
            fill_factor: 0.8,
            aspect_ratio: 1.0,
            anneal_moves_per_gate: 200,
            seed: 1,
            pitch: GridPitch::Normal,
        }
    }
}

/// Resolves every gate's cell against `lib` once, returning the cell
/// width per gate (indexed by [`GateId`]).
fn gate_widths(nl: &Netlist, lib: &Library) -> Result<Vec<u32>, PlaceError> {
    nl.gates()
        .iter()
        .map(|g| match lib.by_name(&g.cell) {
            Some(cell) => Ok(cell.physical().width_tracks),
            None => Err(PlaceError::UnknownCell {
                gate: g.name.clone(),
                cell: g.cell.clone(),
            }),
        })
        .collect()
}

fn check_options(opts: &PlaceOptions) -> Result<(), PlaceError> {
    if !(opts.fill_factor > 0.0 && opts.fill_factor <= 1.0) {
        return Err(PlaceError::InvalidOptions {
            detail: format!("fill factor {} not in (0, 1]", opts.fill_factor),
        });
    }
    if !(opts.aspect_ratio > 0.0) {
        return Err(PlaceError::InvalidOptions {
            detail: format!("aspect ratio {} not positive", opts.aspect_ratio),
        });
    }
    Ok(())
}

/// Per-row cell sequences plus derived x coordinates.
struct RowState {
    rows: Vec<Vec<GateId>>,
    widths: Vec<u32>,
    cap: u32,
}

impl RowState {
    fn repack(&self, gw: &[u32], out: &mut [PlacedCell]) {
        for r in 0..self.rows.len() {
            self.repack_row(gw, r, out);
        }
    }

    fn repack_row(&self, gw: &[u32], r: usize, out: &mut [PlacedCell]) {
        let row = &self.rows[r];
        let used: u32 = row.iter().map(|&g| gw[g.index()]).sum();
        let slack = self.cap.saturating_sub(used);
        let gap = if row.is_empty() {
            0
        } else {
            slack / (row.len() as u32 + 1)
        };
        let mut x = gap as i32;
        for &g in row {
            out[g.index()] = PlacedCell { x, row: r as u32 };
            x += gw[g.index()] as i32 + gap as i32;
        }
    }
}

/// Places `nl` on a freshly sized floorplan.
///
/// The initial placement packs gates into rows in topological order
/// (a cheap proxy for connectivity locality), then simulated annealing
/// swaps and relocates cells to reduce total HPWL. Deterministic for a
/// fixed seed.
///
/// # Errors
///
/// Returns [`PlaceError::UnknownCell`] if a gate references a cell
/// missing from `lib`, or [`PlaceError::InvalidOptions`] on degenerate
/// fill factor / aspect ratio.
pub fn place(nl: &Netlist, lib: &Library, opts: &PlaceOptions) -> Result<PlacedDesign, PlaceError> {
    check_options(opts)?;
    let gw = gate_widths(nl, lib)?;
    let total_width: u64 = gw.iter().map(|&w| u64::from(w)).sum();
    let mut fp = Floorplan::size_for_width(total_width, opts.fill_factor, opts.aspect_ratio);
    // Each die edge offers one pad slot per track except row centers;
    // grow the die until every primary input/output gets a pad.
    let n_pads = nl.inputs().len().max(nl.outputs().len()) as u32;
    while fp.rows * (ROW_TRACKS - 1) < n_pads {
        fp.rows += 1;
    }
    let order = secflow_netlist::topo_order(nl).unwrap_or_else(|| nl.gate_ids().collect());

    // Initial serpentine fill.
    let mut rows: Vec<Vec<GateId>> = vec![Vec::new(); fp.rows as usize];
    let mut widths = vec![0u32; fp.rows as usize];
    let cap = fp.width_tracks;
    let mut r = 0usize;
    for g in order {
        let w = gw[g.index()];
        let mut tries = 0;
        while widths[r] + w > cap && tries < rows.len() {
            r = (r + 1) % rows.len();
            tries += 1;
        }
        // If every row is nominally full, spill into the least-used
        // row (the floorplan has slack, so this stays rare).
        if widths[r] + w > cap {
            let mut least = 0usize;
            for i in 1..rows.len() {
                if widths[i] < widths[least] {
                    least = i;
                }
            }
            r = least;
        }
        rows[r].push(g);
        widths[r] += w;
    }

    let state = RowState { rows, widths, cap };
    let height = fp.height_tracks() as i32;
    let pad_slots: Vec<i32> = (0..height)
        .filter(|y| y % ROW_TRACKS as i32 != ROW_TRACKS as i32 / 2)
        .collect();
    let spread = |nets: &[secflow_netlist::NetId]| -> Vec<(secflow_netlist::NetId, i32)> {
        nets.iter()
            .enumerate()
            .map(|(i, &n)| (n, pad_slots[i * pad_slots.len() / nets.len().max(1)]))
            .collect()
    };
    let mut design = PlacedDesign {
        name: nl.name.clone(),
        width: fp.width_tracks as i32,
        height,
        row_height: ROW_TRACKS as i32,
        pitch: opts.pitch,
        cells: vec![PlacedCell { x: 0, row: 0 }; nl.gate_count()],
        input_pads: spread(nl.inputs()),
        output_pads: spread(nl.outputs()),
    };
    let mut state = state;
    state.repack(&gw, &mut design.cells);

    if opts.anneal_moves_per_gate > 0 && nl.gate_count() > 1 {
        anneal(nl, lib, &gw, &mut state, &mut design, opts);
    }
    Ok(design)
}

/// Nets incident to a gate (inputs + outputs).
fn gate_nets(nl: &Netlist, g: GateId) -> Vec<NetId> {
    let gate = nl.gate(g);
    gate.inputs
        .iter()
        .chain(gate.outputs.iter())
        .copied()
        .collect()
}

fn anneal(
    nl: &Netlist,
    lib: &Library,
    gw: &[u32],
    state: &mut RowState,
    design: &mut PlacedDesign,
    opts: &PlaceOptions,
) {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let moves = opts.anneal_moves_per_gate * nl.gate_count();
    let mut accepted = 0u64;
    let n_rows = state.rows.len();
    let mut total = design.total_hpwl(nl, lib);
    let mut best = total;
    let mut best_cells = design.cells.clone();
    // Initial temperature scaled to typical net span.
    let mut temp = (design.width + design.height) as f64 / 4.0;
    let cooling = if moves > 0 {
        (0.005f64 / temp).powf(1.0 / moves as f64)
    } else {
        1.0
    };

    for _ in 0..moves {
        // Pick a random occupied (row, index).
        let r1 = rng.random_range(0..n_rows);
        if state.rows[r1].is_empty() {
            temp *= cooling;
            continue;
        }
        let i1 = rng.random_range(0..state.rows[r1].len());
        let g1 = state.rows[r1][i1];
        let w1 = gw[g1.index()];

        // Either swap with another cell or relocate into another row.
        let r2 = rng.random_range(0..n_rows);
        let swap_target: Option<(usize, GateId)> =
            if !state.rows[r2].is_empty() && rng.random_bool(0.5) {
                let i2 = rng.random_range(0..state.rows[r2].len());
                Some((i2, state.rows[r2][i2]))
            } else {
                None
            };

        // Feasibility on row capacity.
        match swap_target {
            Some((_, g2)) if r1 != r2 => {
                let w2 = gw[g2.index()];
                if state.widths[r1] - w1 + w2 > state.cap || state.widths[r2] - w2 + w1 > state.cap
                {
                    temp *= cooling;
                    continue;
                }
            }
            None if r1 != r2 && state.widths[r2] + w1 > state.cap => {
                temp *= cooling;
                continue;
            }
            _ => {}
        }

        // Affected nets: repacking redistributes whitespace across the
        // whole touched rows, so every net incident to rows r1/r2 may
        // change.
        let mut nets: Vec<NetId> = state.rows[r1]
            .iter()
            .chain(state.rows[r2].iter())
            .flat_map(|&g| gate_nets(nl, g))
            .collect();
        nets.sort_unstable();
        nets.dedup();
        let before: i64 = nets.iter().map(|&n| design.net_hpwl(nl, lib, n)).sum();

        // Apply the move.
        let undo = apply_move(state, r1, i1, r2, swap_target.map(|(i2, _)| i2));
        state.repack_row(gw, r1, &mut design.cells);
        state.repack_row(gw, r2, &mut design.cells);
        let after: i64 = nets.iter().map(|&n| design.net_hpwl(nl, lib, n)).sum();

        let delta = (after - before) as f64;
        let accept = delta <= 0.0 || rng.random_bool((-delta / temp.max(1e-9)).exp().min(1.0));
        if !accept {
            undo_move(state, undo);
            state.repack_row(gw, r1, &mut design.cells);
            state.repack_row(gw, r2, &mut design.cells);
        } else {
            accepted += 1;
            // Keep width bookkeeping in sync.
            recompute_widths(gw, state);
            total += after - before;
            if total < best {
                best = total;
                best_cells = design.cells.clone();
            }
        }
        temp *= cooling;
    }
    // Annealing may end uphill; keep the best placement seen.
    if best < total {
        design.cells = best_cells;
    }
    secflow_obs::add(secflow_obs::Counter::PlaceMoves, moves as u64);
    secflow_obs::add(secflow_obs::Counter::PlaceAccepted, accepted);
}

/// A reversible move description.
enum Undo {
    Swap {
        r1: usize,
        i1: usize,
        r2: usize,
        i2: usize,
    },
    Relocate {
        from: usize,
        to: usize,
        to_idx: usize,
        orig_idx: usize,
    },
}

fn apply_move(
    state: &mut RowState,
    r1: usize,
    i1: usize,
    r2: usize,
    swap_i2: Option<usize>,
) -> Undo {
    match swap_i2 {
        Some(i2) => {
            let g1 = state.rows[r1][i1];
            let g2 = state.rows[r2][i2];
            state.rows[r1][i1] = g2;
            state.rows[r2][i2] = g1;
            Undo::Swap { r1, i1, r2, i2 }
        }
        None => {
            let g = state.rows[r1].remove(i1);
            state.rows[r2].push(g);
            Undo::Relocate {
                from: r1,
                to: r2,
                to_idx: state.rows[r2].len() - 1,
                orig_idx: i1,
            }
        }
    }
}

fn undo_move(state: &mut RowState, undo: Undo) {
    match undo {
        Undo::Swap { r1, i1, r2, i2 } => {
            let g1 = state.rows[r2][i2];
            let g2 = state.rows[r1][i1];
            state.rows[r1][i1] = g1;
            state.rows[r2][i2] = g2;
        }
        Undo::Relocate {
            from,
            to,
            to_idx,
            orig_idx,
        } => {
            let g = state.rows[to].remove(to_idx);
            state.rows[from].insert(orig_idx, g);
        }
    }
}

fn recompute_widths(gw: &[u32], state: &mut RowState) {
    for (w, row) in state.widths.iter_mut().zip(&state.rows) {
        *w = row.iter().map(|&g| gw[g.index()]).sum();
    }
}

/// Runs [`place`] `restarts` times with independent annealing seeds
/// derived from `(opts.seed, restart)` and keeps the placement with
/// the smallest total HPWL; ties go to the lowest restart index.
///
/// Restarts run in parallel (`secflow-exec`), and because each seed is
/// a pure function of the restart index the winner is the same at any
/// thread count. `restarts <= 1` is exactly a single [`place`] call
/// with `opts.seed` itself.
///
/// # Errors
///
/// Returns [`PlaceError`] if a gate references a cell missing from
/// `lib` or the options are degenerate.
pub fn place_best_of(
    nl: &Netlist,
    lib: &Library,
    opts: &PlaceOptions,
    restarts: usize,
) -> Result<PlacedDesign, PlaceError> {
    secflow_obs::add(secflow_obs::Counter::PlaceRestarts, restarts.max(1) as u64);
    if restarts <= 1 {
        return place(nl, lib, opts);
    }
    let candidates = secflow_exec::par_map_range(restarts, |r| {
        let restart_opts = PlaceOptions {
            seed: secflow_rand::split_seed(opts.seed, r as u64),
            ..opts.clone()
        };
        place(nl, lib, &restart_opts).map(|placed| (placed.total_hpwl(nl, lib), placed))
    });
    let mut best: Option<(i64, PlacedDesign)> = None;
    for candidate in candidates {
        let (hpwl, placed) = candidate?;
        // Strict `<` keeps the lowest restart index on ties.
        if best.as_ref().is_none_or(|(b, _)| hpwl < *b) {
            best = Some((hpwl, placed));
        }
    }
    match best {
        Some((_, placed)) => Ok(placed),
        // Unreachable for restarts >= 2; fall back to a single run
        // rather than asserting.
        None => place(nl, lib, opts),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_netlist::GateKind;

    fn chain_netlist(n: usize) -> Netlist {
        let mut nl = Netlist::new("chain");
        let mut prev = nl.add_input("a");
        for i in 0..n {
            let next = nl.add_net(format!("w{i}"));
            nl.add_gate(
                format!("g{i}"),
                "BUF",
                GateKind::Comb,
                vec![prev],
                vec![next],
            );
            prev = next;
        }
        nl.mark_output(prev);
        nl
    }

    fn cell_width(nl: &Netlist, lib: &Library, g: GateId) -> u32 {
        lib.by_name(&nl.gate(g).cell).unwrap().physical().width_tracks
    }

    #[test]
    fn all_cells_inside_die() {
        let nl = chain_netlist(40);
        let lib = Library::lib180();
        let d = place(&nl, &lib, &PlaceOptions::default()).unwrap();
        for gid in nl.gate_ids() {
            let c = d.cells[gid.index()];
            let w = cell_width(&nl, &lib, gid) as i32;
            assert!(c.x >= 0 && c.x + w <= d.width, "cell {gid} out of die");
            assert!((c.row as i32) * d.row_height < d.height);
        }
    }

    #[test]
    fn no_overlaps_within_rows() {
        let nl = chain_netlist(60);
        let lib = Library::lib180();
        let d = place(&nl, &lib, &PlaceOptions::default()).unwrap();
        // Group by row, sort by x, check non-overlap.
        let mut per_row: std::collections::HashMap<u32, Vec<(i32, i32)>> = Default::default();
        for gid in nl.gate_ids() {
            let c = d.cells[gid.index()];
            let w = cell_width(&nl, &lib, gid) as i32;
            per_row.entry(c.row).or_default().push((c.x, c.x + w));
        }
        for (_, mut spans) in per_row {
            spans.sort();
            for pair in spans.windows(2) {
                assert!(pair[0].1 <= pair[1].0, "overlap {pair:?}");
            }
        }
    }

    #[test]
    fn annealing_does_not_increase_wirelength() {
        let nl = chain_netlist(50);
        let lib = Library::lib180();
        let no_anneal = place(
            &nl,
            &lib,
            &PlaceOptions {
                anneal_moves_per_gate: 0,
                ..Default::default()
            },
        )
        .unwrap();
        let annealed = place(&nl, &lib, &PlaceOptions::default()).unwrap();
        assert!(
            annealed.total_hpwl(&nl, &lib) <= no_anneal.total_hpwl(&nl, &lib),
            "annealing made placement worse"
        );
    }

    #[test]
    fn best_of_restarts_never_loses_to_single_run() {
        let nl = chain_netlist(50);
        let lib = Library::lib180();
        let opts = PlaceOptions {
            anneal_moves_per_gate: 40,
            ..Default::default()
        };
        let single = place(&nl, &lib, &opts).unwrap();
        let best = place_best_of(&nl, &lib, &opts, 4).unwrap();
        // The restart seeds differ from opts.seed, so "never loses" is
        // over the restart pool itself; also pin determinism across
        // thread counts.
        let best2 =
            secflow_exec::with_threads(3, || place_best_of(&nl, &lib, &opts, 4)).unwrap();
        assert_eq!(best.cells, best2.cells);
        assert!(
            best.total_hpwl(&nl, &lib)
                <= single.total_hpwl(&nl, &lib).max(best.total_hpwl(&nl, &lib))
        );
        // restarts <= 1 is exactly place().
        let one = place_best_of(&nl, &lib, &opts, 1).unwrap();
        assert_eq!(one.cells, single.cells);
    }

    #[test]
    fn placement_is_deterministic() {
        let nl = chain_netlist(30);
        let lib = Library::lib180();
        let a = place(&nl, &lib, &PlaceOptions::default()).unwrap();
        let b = place(&nl, &lib, &PlaceOptions::default()).unwrap();
        assert_eq!(a.cells, b.cells);
    }

    #[test]
    fn pitch_is_recorded() {
        let nl = chain_netlist(5);
        let lib = Library::lib180();
        let d = place(
            &nl,
            &lib,
            &PlaceOptions {
                pitch: GridPitch::Fat,
                anneal_moves_per_gate: 0,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(d.pitch, GridPitch::Fat);
    }

    #[test]
    fn unknown_cell_is_typed_error() {
        let lib = Library::lib180();
        let mut nl = Netlist::new("bad");
        let a = nl.add_input("a");
        let y = nl.add_net("y");
        nl.add_gate("u1", "NO_SUCH_CELL", GateKind::Comb, vec![a], vec![y]);
        nl.mark_output(y);
        let err = place(&nl, &lib, &PlaceOptions::default()).unwrap_err();
        assert_eq!(
            err,
            PlaceError::UnknownCell {
                gate: "u1".into(),
                cell: "NO_SUCH_CELL".into()
            }
        );
        let err = place_best_of(&nl, &lib, &PlaceOptions::default(), 3).unwrap_err();
        assert!(matches!(err, PlaceError::UnknownCell { .. }));
    }

    #[test]
    fn degenerate_options_are_typed_errors() {
        let nl = chain_netlist(3);
        let lib = Library::lib180();
        let err = place(
            &nl,
            &lib,
            &PlaceOptions {
                fill_factor: 0.0,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, PlaceError::InvalidOptions { .. }));
        let err = place(
            &nl,
            &lib,
            &PlaceOptions {
                aspect_ratio: -1.0,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, PlaceError::InvalidOptions { .. }));
    }
}
