//! Deterministic parallel execution for the secflow workspace.
//!
//! Every hot loop in the flow — trace campaigns, the 64 DPA key
//! guesses, per-net extraction, random LEC rounds, annealing restarts
//! — is embarrassingly parallel, but the workspace's §7 determinism
//! contract demands *byte-identical* results at any worker count.
//! This crate provides the one execution primitive that reconciles
//! the two:
//!
//! * [`par_map`] / [`par_map_indexed`] / [`par_map_range`] — an
//!   order-preserving parallel map on [`std::thread::scope`]. Workers
//!   claim chunks of the index space from a shared [`AtomicUsize`]
//!   (chunked work stealing), tag every result with its item index,
//!   and the results are reassembled in input order. Item `i`'s value
//!   therefore never depends on which worker computed it or when.
//! * [`par_map_range_with`] — the same decomposition with a reusable
//!   per-worker state (`init` once per worker, `f(&mut state, i)` per
//!   item), for campaigns whose per-item work wants an expensive
//!   scratch buffer rather than fresh allocations.
//! * [`tree_sum`] — a fixed-shape pairwise reduction for `f64`
//!   accumulations. Its bracketing depends only on the input length,
//!   never on the worker count, so parallel sums stay bit-exact.
//! * Panic capture: a panicking task aborts the pool and the panic of
//!   the *lowest* panicking item index is re-raised on the caller, so
//!   even failures are deterministic.
//!
//! Callers must pair this with *stream splitting* on the RNG side:
//! per-item randomness is derived as `f(seed, item_index)` (see
//! `secflow_rand::split_seed`), never drawn sequentially across items,
//! so item `i`'s stream is independent of items `0..i`.
//!
//! # Choosing the worker count
//!
//! Resolution order, first match wins:
//!
//! 1. a thread-local [`with_threads`] override (scoped, for tests);
//! 2. the process-global [`set_threads`] value (the `--threads` CLI
//!    flag);
//! 3. the `SECFLOW_THREADS` environment variable;
//! 4. [`std::thread::available_parallelism`].
//!
//! A count of `1` runs the exact same per-item decomposition serially
//! on the calling thread — there is no separate serial code path to
//! drift from the parallel one.
//!
//! Nested parallelism is rejected by falling back to serial: a
//! `par_map` issued from inside a worker task runs inline, so the
//! pool never recursively oversubscribes and task granularity stays
//! predictable.

use std::any::Any;
use std::cell::Cell;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-global worker count; 0 means "not set".
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Scoped per-thread override; 0 means "not set".
    static LOCAL_THREADS: Cell<usize> = const { Cell::new(0) };
    /// True on pool worker threads, to serialize nested `par_map`s.
    static IN_PAR: Cell<bool> = const { Cell::new(false) };
}

/// Execution configuration: how many workers a parallel region uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Worker count; `1` executes serially on the calling thread.
    pub threads: usize,
}

impl ExecConfig {
    /// Resolves the effective configuration from the override chain
    /// (see the crate docs for the precedence).
    pub fn resolve() -> Self {
        let local = LOCAL_THREADS.with(Cell::get);
        if local != 0 {
            return ExecConfig { threads: local };
        }
        let global = GLOBAL_THREADS.load(Ordering::Relaxed);
        if global != 0 {
            return ExecConfig { threads: global };
        }
        if let Ok(v) = std::env::var("SECFLOW_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n != 0 {
                    return ExecConfig { threads: n };
                }
            }
        }
        ExecConfig {
            threads: std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
        }
    }

    /// The serial configuration.
    pub fn serial() -> Self {
        ExecConfig { threads: 1 }
    }
}

impl Default for ExecConfig {
    fn default() -> Self {
        Self::resolve()
    }
}

/// Sets the process-global worker count (the `--threads` CLI flag).
/// `0` clears the setting, falling through to `SECFLOW_THREADS` /
/// `available_parallelism`.
pub fn set_threads(n: usize) {
    GLOBAL_THREADS.store(n, Ordering::Relaxed);
}

/// The worker count the next top-level parallel region will use.
pub fn effective_threads() -> usize {
    ExecConfig::resolve().threads
}

/// Runs `f` with the worker count pinned to `n` on this thread only.
/// Scoped and panic-safe: the previous override is restored when `f`
/// returns or unwinds. This is the race-free way for tests to compare
/// thread counts (unlike mutating `SECFLOW_THREADS`, which is
/// process-global).
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            LOCAL_THREADS.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(LOCAL_THREADS.with(|c| c.replace(n)));
    f()
}

/// True while executing inside a pool worker task; `par_map` calls
/// made in this state run serially inline.
pub fn in_parallel_region() -> bool {
    IN_PAR.with(Cell::get)
}

/// Order-preserving parallel map over a slice.
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    par_map_range(items.len(), |i| f(&items[i]))
}

/// Order-preserving parallel map with the item index passed to `f`.
pub fn par_map_indexed<T: Sync, R: Send>(items: &[T], f: impl Fn(usize, &T) -> R + Sync) -> Vec<R> {
    par_map_range(items.len(), |i| f(i, &items[i]))
}

/// Fallible order-preserving parallel map over a slice.
///
/// Every item still runs (errors do not cancel in-flight work), then
/// the error of the **lowest** failing index is returned — the same
/// deterministic lowest-index rule the pool uses for panics, so the
/// reported error is independent of the worker count. Panics remain
/// the backstop for bugs; typed errors are the contract for bad input.
///
/// # Errors
///
/// Returns the first (lowest-index) `Err` produced by `f`.
pub fn try_par_map<T: Sync, R: Send, E: Send>(
    items: &[T],
    f: impl Fn(&T) -> Result<R, E> + Sync,
) -> Result<Vec<R>, E> {
    try_par_map_range(items.len(), |i| f(&items[i]))
}

/// Fallible order-preserving parallel map over `0..n`; see
/// [`try_par_map`] for the lowest-index error contract.
///
/// # Errors
///
/// Returns the first (lowest-index) `Err` produced by `f`.
pub fn try_par_map_range<R: Send, E: Send>(
    n: usize,
    f: impl Fn(usize) -> Result<R, E> + Sync,
) -> Result<Vec<R>, E> {
    // Order preservation makes `collect` stop at the lowest index.
    par_map_range(n, f).into_iter().collect()
}

/// Order-preserving parallel map over the index range `0..n`.
///
/// `out[i] == f(i)` for every `i`, regardless of the worker count.
/// If any task panics, the panic of the lowest panicking index is
/// re-raised after the pool drains.
pub fn par_map_range<R: Send>(n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    let threads = ExecConfig::resolve().threads.min(n.max(1));
    if threads <= 1 || in_parallel_region() {
        return (0..n).map(f).collect();
    }
    run_pool(n, threads, &f)
}

/// [`par_map_range`] with reusable per-worker state.
///
/// Each pool worker calls `init()` once and threads the resulting
/// value through every item it processes as `f(&mut state, i)`; the
/// serial path (one thread, or a nested region) creates a single state
/// and reuses it for all items. This is the campaign primitive for
/// expensive scratch buffers — e.g. one `secflow_sim::EngineScratch`
/// per worker, reset per window instead of reallocated.
///
/// **Caller contract:** `f(state, i)` must return the same value for
/// item `i` no matter which items the state previously processed (the
/// state is a scratch or cache, not an accumulator). Work distribution
/// is scheduling-dependent, so a history-sensitive `f` would break the
/// crate's determinism guarantee. `state` needs no `Send`/`Sync`: it
/// is created and consumed entirely on one worker thread.
pub fn par_map_range_with<S, R: Send>(
    n: usize,
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, usize) -> R + Sync,
) -> Vec<R> {
    let threads = ExecConfig::resolve().threads.min(n.max(1));
    if threads <= 1 || in_parallel_region() {
        let mut state = init();
        return (0..n).map(|i| f(&mut state, i)).collect();
    }
    run_pool_with(n, threads, &init, &f)
}

/// Order-preserving parallel mutation of disjoint slice elements.
///
/// Each element is visited exactly once as `f(i, &mut items[i])`,
/// with the same chunked work-stealing decomposition as
/// [`par_map_range`]. Because every index is claimed by exactly one
/// worker, the `&mut` accesses are disjoint — this is the primitive
/// behind the streaming DPA/CPA accumulators, where every key guess
/// owns a shard of accumulator state and folds its own updates in
/// input order regardless of which worker ran it.
///
/// Like every primitive in this crate, the result (the final state of
/// `items`) is byte-identical at any worker count: `f` receives only
/// its own element, so the per-element fold order cannot depend on
/// scheduling.
pub fn par_for_each_mut<S: Send>(items: &mut [S], f: impl Fn(usize, &mut S) + Sync) {
    /// Raw-pointer wrapper so the base address can be captured by the
    /// `Sync` closure; disjointness of the accesses is what makes the
    /// sharing sound, not the wrapper.
    struct Base<S>(*mut S);
    unsafe impl<S: Send> Sync for Base<S> {}
    let base = Base(items.as_mut_ptr());
    let base = &base;
    par_map_range(items.len(), move |i| {
        // SAFETY: the pool claims every index in `0..items.len()`
        // exactly once (panic unwinding aborts before any reuse), and
        // distinct indices address disjoint elements of `items`, so no
        // two live `&mut` borrows alias. The borrow ends before the
        // closure returns.
        let s = unsafe { &mut *base.0.add(i) };
        f(i, s);
    });
}

/// Deterministic `f64` sum over `0..n` of a parallel map: the values
/// are computed in parallel and reduced with [`tree_sum`], so the
/// result is bit-exact at any worker count.
pub fn par_sum_range(n: usize, f: impl Fn(usize) -> f64 + Sync) -> f64 {
    tree_sum(&par_map_range(n, f))
}

/// Fixed-shape pairwise tree reduction of a `f64` slice.
///
/// The bracketing (split at the midpoint, recurse) depends only on
/// the slice length, so for a given sequence of values the result is
/// one specific `f64` — unlike a left fold distributed over a
/// thread-count-dependent number of partial sums. It is also more
/// accurate than a running fold on long inputs (error grows like
/// `O(log n)` instead of `O(n)`).
pub fn tree_sum(xs: &[f64]) -> f64 {
    match xs {
        [] => 0.0,
        [x] => *x,
        _ => {
            let mid = xs.len() / 2;
            tree_sum(&xs[..mid]) + tree_sum(&xs[mid..])
        }
    }
}

/// The scoped worker pool behind [`par_map_range`]; `threads >= 2`
/// and `n >= 2` here.
fn run_pool<R: Send>(n: usize, threads: usize, f: &(impl Fn(usize) -> R + Sync)) -> Vec<R> {
    run_pool_with(n, threads, &|| (), &|(), i| f(i))
}

/// The scoped worker pool behind [`par_map_range_with`]: each worker
/// runs `init()` once, then claims chunks and folds its state through
/// `f`. An `init` panic is recorded past every real index, so item
/// panics still win the lowest-index race deterministically.
fn run_pool_with<S, R: Send>(
    n: usize,
    threads: usize,
    init: &(impl Fn() -> S + Sync),
    f: &(impl Fn(&mut S, usize) -> R + Sync),
) -> Vec<R> {
    // Chunked index claiming: large enough to amortize the atomic,
    // small enough to keep the tail balanced.
    let chunk = (n / (threads * 8)).clamp(1, 1024);
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let panics: Mutex<Vec<(usize, Box<dyn Any + Send>)>> = Mutex::new(Vec::new());

    // Observability: one enabled() check for the whole region; the
    // per-worker tallies below are plain locals when it is off.
    let obs_on = secflow_obs::enabled();
    let region = secflow_obs::begin_region(n as u64);
    let _region_span = secflow_obs::span("exec.region");

    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.extend((0..n).map(|_| None));

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let (next, abort, panics) = (&next, &abort, &panics);
                s.spawn(move || {
                    IN_PAR.with(|c| c.set(true));
                    let t0 = obs_on.then(std::time::Instant::now);
                    let mut chunks_claimed = 0u64;
                    let mut items_done = 0u64;
                    let local = 'work: {
                        let mut local: Vec<(usize, R)> = Vec::new();
                        let mut state = match catch_unwind(AssertUnwindSafe(init)) {
                            Ok(s) => s,
                            Err(payload) => {
                                abort.store(true, Ordering::Relaxed);
                                panics
                                    .lock()
                                    .unwrap_or_else(|e| e.into_inner())
                                    .push((n, payload));
                                break 'work local;
                            }
                        };
                        while !abort.load(Ordering::Relaxed) {
                            let start = next.fetch_add(chunk, Ordering::Relaxed);
                            if start >= n {
                                break;
                            }
                            chunks_claimed += 1;
                            let end = (start + chunk).min(n);
                            for i in start..end {
                                match catch_unwind(AssertUnwindSafe(|| f(&mut state, i))) {
                                    Ok(r) => {
                                        local.push((i, r));
                                        items_done += 1;
                                    }
                                    Err(payload) => {
                                        abort.store(true, Ordering::Relaxed);
                                        panics
                                            .lock()
                                            .unwrap_or_else(|e| e.into_inner())
                                            .push((i, payload));
                                        break 'work local;
                                    }
                                }
                            }
                        }
                        local
                    };
                    if let Some(t0) = t0 {
                        secflow_obs::record_worker(
                            region,
                            w as u32,
                            t0.elapsed().as_nanos() as u64,
                            chunks_claimed,
                            items_done,
                        );
                        secflow_obs::flush_thread();
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            // Worker closures capture their own panics; join only
            // fails on a panic in the bookkeeping above.
            for (i, r) in h.join().expect("worker bookkeeping panicked") {
                slots[i] = Some(r);
            }
        }
    });

    let mut captured = panics.into_inner().unwrap_or_else(|e| e.into_inner());
    if !captured.is_empty() {
        captured.sort_by_key(|&(i, _)| i);
        let (_, payload) = captured.swap_remove(0);
        resume_unwind(payload);
    }
    if abort.load(Ordering::Relaxed) {
        unreachable!("pool aborted without a captured panic");
    }
    slots
        .into_iter()
        .map(|r| r.expect("every index in 0..n is claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_preserve_input_order() {
        let out = with_threads(8, || par_map_range(1000, |i| i * i));
        assert_eq!(out, (0..1000).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn matches_serial_at_every_thread_count() {
        let items: Vec<u64> = (0..500).map(|i| i * 7 + 3).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x)).collect();
        for t in [1, 2, 3, 8, 64] {
            let got = with_threads(t, || par_map(&items, |&x| x.wrapping_mul(x)));
            assert_eq!(got, expect, "threads = {t}");
        }
    }

    #[test]
    fn indexed_map_sees_correct_indices() {
        let items = vec!["a", "b", "c", "d"];
        let out = with_threads(4, || par_map_indexed(&items, |i, s| format!("{i}{s}")));
        assert_eq!(out, vec!["0a", "1b", "2c", "3d"]);
    }

    #[test]
    fn try_map_returns_lowest_index_error_at_every_thread_count() {
        for t in [1, 2, 4, 8] {
            let got = with_threads(t, || {
                try_par_map_range(100, |i| {
                    if i % 7 == 3 {
                        Err(i)
                    } else {
                        Ok(i * 2)
                    }
                })
            });
            assert_eq!(got, Err(3), "threads = {t}");
        }
    }

    #[test]
    fn try_map_collects_all_ok_values() {
        let items: Vec<u64> = (0..50).collect();
        let got = with_threads(4, || try_par_map(&items, |&x| Ok::<u64, ()>(x + 1)));
        assert_eq!(got, Ok((1..=50).collect::<Vec<u64>>()));
    }

    #[test]
    fn stateful_map_matches_serial_at_every_thread_count() {
        // The state is a scratch buffer: refilled per item, so results
        // are independent of which worker processed what.
        let expect: Vec<u64> = (0..500).map(|i| (0..=i as u64).sum()).collect();
        for t in [1, 2, 3, 8] {
            let got = with_threads(t, || {
                par_map_range_with(500, Vec::<u64>::new, |buf, i| {
                    buf.clear();
                    buf.extend(0..=i as u64);
                    buf.iter().sum::<u64>()
                })
            });
            assert_eq!(got, expect, "threads = {t}");
        }
    }

    #[test]
    fn stateful_map_creates_one_state_per_worker() {
        let inits = AtomicUsize::new(0);
        let serial = with_threads(1, || {
            par_map_range_with(64, || inits.fetch_add(1, Ordering::Relaxed), |_, i| i)
        });
        assert_eq!(serial, (0..64).collect::<Vec<_>>());
        assert_eq!(
            inits.load(Ordering::Relaxed),
            1,
            "serial path shares one state"
        );

        inits.store(0, Ordering::Relaxed);
        let pooled = with_threads(4, || {
            par_map_range_with(64, || inits.fetch_add(1, Ordering::Relaxed), |_, i| i)
        });
        assert_eq!(pooled, (0..64).collect::<Vec<_>>());
        assert_eq!(inits.load(Ordering::Relaxed), 4, "one init per pool worker");
    }

    #[test]
    fn stateful_map_propagates_item_panics() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            with_threads(4, || {
                par_map_range_with(
                    256,
                    || (),
                    |(), i| {
                        std::panic::panic_any(i);
                        #[allow(unreachable_code)]
                        0usize
                    },
                )
            })
        }))
        .expect_err("panic must propagate");
        assert_eq!(
            *caught.downcast::<usize>().expect("payload is the index"),
            0
        );
    }

    #[test]
    fn for_each_mut_touches_every_element_once() {
        for t in [1, 2, 3, 8] {
            let mut items: Vec<u64> = (0..500).map(|i| i * 3).collect();
            with_threads(t, || {
                par_for_each_mut(&mut items, |i, s| {
                    *s += i as u64;
                });
            });
            let expect: Vec<u64> = (0..500).map(|i| i * 3 + i).collect();
            assert_eq!(items, expect, "threads = {t}");
        }
    }

    #[test]
    fn for_each_mut_is_a_per_element_fold() {
        // Every element accumulates its own serial fold; the final
        // state must be bit-identical at any worker count.
        let fold = |k: usize| -> f64 {
            let mut acc = 0.0f64;
            for j in 0..200 {
                acc += ((k * 200 + j) as f64 * 0.1).sin();
            }
            acc
        };
        let expect: Vec<u64> = (0..64).map(|k| fold(k).to_bits()).collect();
        for t in [1, 2, 8] {
            let mut state = vec![0.0f64; 64];
            with_threads(t, || {
                par_for_each_mut(&mut state, |k, acc| {
                    for j in 0..200 {
                        *acc += ((k * 200 + j) as f64 * 0.1).sin();
                    }
                });
            });
            let got: Vec<u64> = state.iter().map(|x| x.to_bits()).collect();
            assert_eq!(got, expect, "threads = {t}");
        }
    }

    #[test]
    fn for_each_mut_handles_empty_and_nested() {
        let mut empty: [u8; 0] = [];
        with_threads(8, || par_for_each_mut(&mut empty, |_, _| unreachable!()));
        // Nested inside a worker it must fall back to serial inline.
        let out = with_threads(4, || {
            par_map_range(4, |i| {
                let mut inner = vec![0usize; 8];
                par_for_each_mut(&mut inner, |j, s| *s = i * 8 + j);
                inner
            })
        });
        for (i, inner) in out.iter().enumerate() {
            assert_eq!(*inner, (i * 8..i * 8 + 8).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = with_threads(8, || par_map_range(0, |_| unreachable!()));
        assert!(out.is_empty());
        let none: [u8; 0] = [];
        let out: Vec<u8> = with_threads(8, || par_map(&none, |&x| x));
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        let out = with_threads(8, || par_map_range(1, |i| (i, in_parallel_region())));
        assert_eq!(out, vec![(0, false)]);
    }

    #[test]
    fn panic_of_lowest_index_propagates() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            with_threads(4, || {
                par_map_range(256, |i| {
                    std::panic::panic_any(i);
                    #[allow(unreachable_code)]
                    0usize
                })
            })
        }))
        .expect_err("panic must propagate");
        // Index 0 is in the first claimed chunk, so with every task
        // panicking the lowest captured index is always 0.
        assert_eq!(
            *caught.downcast::<usize>().expect("payload is the index"),
            0
        );
    }

    #[test]
    fn panic_message_survives_propagation() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            with_threads(2, || {
                par_map_range(8, |i| {
                    assert!(i != 0, "task zero exploded");
                    i
                })
            })
        }))
        .expect_err("panic must propagate");
        let msg = caught
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| caught.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("task zero exploded"), "payload: {msg}");
    }

    #[test]
    fn nested_par_map_falls_back_to_serial() {
        let out = with_threads(4, || {
            par_map_range(8, |i| {
                // Inside a worker the nested call must run inline, not
                // spawn a second pool.
                let nested_inline = if i == 0 {
                    !in_parallel_region()
                } else {
                    in_parallel_region()
                };
                let inner = par_map_range(8, |j| i * 8 + j);
                (nested_inline, inner)
            })
        });
        for (i, (inline_ok, inner)) in out.iter().enumerate() {
            // At least one worker position must see the in-par flag;
            // with 4 workers over 8 items every item except possibly
            // a degenerate inline run is in a worker.
            assert!(*inline_ok || i == 0);
            assert_eq!(*inner, (0..8).map(|j| i * 8 + j).collect::<Vec<_>>());
        }
    }

    #[test]
    fn with_threads_is_scoped_and_restored() {
        let before = effective_threads();
        let inner = with_threads(3, || {
            let mid = with_threads(5, effective_threads);
            (effective_threads(), mid)
        });
        assert_eq!(inner, (3, 5));
        assert_eq!(effective_threads(), before);
    }

    #[test]
    fn with_threads_restores_after_panic() {
        let before = effective_threads();
        let _ = catch_unwind(AssertUnwindSafe(|| {
            with_threads(7, || panic!("boom"));
        }));
        assert_eq!(effective_threads(), before);
    }

    #[test]
    fn set_threads_is_global_until_cleared() {
        // Local overrides shield the other tests in this binary from
        // this global mutation; run the whole check under one.
        let local_shield = 0;
        let _ = local_shield;
        set_threads(2);
        assert_eq!(effective_threads(), 2);
        // The thread-local override still wins.
        assert_eq!(with_threads(6, effective_threads), 6);
        set_threads(0);
        assert_ne!(GLOBAL_THREADS.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn tree_sum_has_fixed_bracketing() {
        let xs = [1e16, 1.0, -1e16, 1.0];
        // Midpoint split: (1e16 + 1.0) + (-1e16 + 1.0) = 1.0 in f64
        // (the 1.0 is absorbed on the left, survives on the right).
        let expect = (1e16f64 + 1.0) + (-1e16f64 + 1.0);
        assert_eq!(tree_sum(&xs).to_bits(), expect.to_bits());
        assert_eq!(tree_sum(&[]), 0.0);
        assert_eq!(tree_sum(&[42.5]), 42.5);
    }

    #[test]
    fn par_sum_is_bit_exact_across_thread_counts() {
        // Values chosen so a naive fold would round differently than
        // the tree; the tree must agree with itself at any count.
        let f = |i: usize| ((i as f64) * 0.1).sin() * 1e9 + 1.0 / (i + 1) as f64;
        let serial = with_threads(1, || par_sum_range(10_000, f));
        for t in [2, 5, 8] {
            let par = with_threads(t, || par_sum_range(10_000, f));
            assert_eq!(serial.to_bits(), par.to_bits(), "threads = {t}");
        }
    }

    #[test]
    fn env_override_is_honoured_when_unset_elsewhere() {
        // Can't mutate the environment race-free in a test binary;
        // instead verify the documented precedence: local beats
        // global beats env/default.
        with_threads(9, || {
            set_threads(4);
            assert_eq!(effective_threads(), 9);
            set_threads(0);
            assert_eq!(effective_threads(), 9);
        });
        assert!(effective_threads() >= 1);
    }
}
