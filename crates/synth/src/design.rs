//! A synchronous sequential design: AIG + named ports + registers.

use crate::aig::{Aig, Lit};

/// A D-type register: its output is an AIG leaf, its next-state
/// function an AIG literal. Registers reset to 0.
#[derive(Debug, Clone)]
pub struct Register {
    /// Register (and output net) name.
    pub name: String,
    /// The AIG leaf literal representing the register output `Q`.
    pub q: Lit,
    /// The next-state function `D`.
    pub next: Lit,
}

/// A synchronous design under synthesis: combinational logic in an
/// [`Aig`], with named primary inputs, primary outputs and registers.
///
/// The implicit single clock drives every register; this mirrors the
/// paper's synchronous design style (the clock is not represented as a
/// logic net).
#[derive(Debug, Clone)]
pub struct Design {
    /// Design name (becomes the netlist module name).
    pub name: String,
    /// The combinational logic.
    pub aig: Aig,
    /// Primary inputs: name and leaf literal, in declaration order.
    pub inputs: Vec<(String, Lit)>,
    /// Primary outputs: name and function literal.
    pub outputs: Vec<(String, Lit)>,
    /// Registers, in declaration order.
    pub registers: Vec<Register>,
}

impl Design {
    /// Creates an empty design.
    pub fn new(name: impl Into<String>) -> Self {
        Design {
            name: name.into(),
            aig: Aig::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            registers: Vec::new(),
        }
    }

    /// Declares a primary input and returns its literal.
    pub fn input(&mut self, name: impl Into<String>) -> Lit {
        let l = self.aig.leaf();
        self.inputs.push((name.into(), l));
        l
    }

    /// Declares a bus of `width` primary inputs named `name[i]`,
    /// LSB first.
    pub fn input_bus(&mut self, name: &str, width: usize) -> Vec<Lit> {
        (0..width)
            .map(|i| self.input(format!("{name}[{i}]")))
            .collect()
    }

    /// Declares a primary output driven by `f`.
    pub fn output(&mut self, name: impl Into<String>, f: Lit) {
        self.outputs.push((name.into(), f));
    }

    /// Declares a bus of outputs named `name[i]`, LSB first.
    pub fn output_bus(&mut self, name: &str, bits: &[Lit]) {
        for (i, &b) in bits.iter().enumerate() {
            self.output(format!("{name}[{i}]"), b);
        }
    }

    /// Declares a register (output available immediately; next-state
    /// set later with [`Design::set_next`]). Returns the `Q` literal.
    pub fn register(&mut self, name: impl Into<String>) -> Lit {
        let q = self.aig.leaf();
        self.registers.push(Register {
            name: name.into(),
            q,
            next: Lit::FALSE,
        });
        q
    }

    /// Declares a bus of `width` registers named `name[i]`, LSB first.
    pub fn register_bus(&mut self, name: &str, width: usize) -> Vec<Lit> {
        (0..width)
            .map(|i| self.register(format!("{name}[{i}]")))
            .collect()
    }

    /// Sets the next-state function of the register whose output is
    /// `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not a register output literal.
    pub fn set_next(&mut self, q: Lit, next: Lit) {
        let r = self
            .registers
            .iter_mut()
            .find(|r| r.q == q)
            .expect("literal is not a register output");
        r.next = next;
    }

    /// Sets next-state functions for a register bus.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or any `q` is not a
    /// register output.
    pub fn set_next_bus(&mut self, qs: &[Lit], nexts: &[Lit]) {
        assert_eq!(qs.len(), nexts.len());
        for (&q, &n) in qs.iter().zip(nexts) {
            self.set_next(q, n);
        }
    }

    /// All root literals that must be realized by mapping: primary
    /// outputs and register next-state functions.
    pub fn roots(&self) -> Vec<Lit> {
        self.outputs
            .iter()
            .map(|(_, l)| *l)
            .chain(self.registers.iter().map(|r| r.next))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_counter_design() {
        let mut d = Design::new("cnt");
        let q = d.register_bus("q", 2);
        // 2-bit increment: q0' = !q0; q1' = q1 ^ q0
        let n0 = q[0].not();
        let n1 = d.aig.xor(q[1], q[0]);
        d.set_next_bus(&q, &[n0, n1]);
        d.output_bus("count", &q);
        assert_eq!(d.registers.len(), 2);
        assert_eq!(d.outputs.len(), 2);
        assert_eq!(d.roots().len(), 4);
    }

    #[test]
    #[should_panic(expected = "not a register output")]
    fn set_next_on_input_panics() {
        let mut d = Design::new("x");
        let a = d.input("a");
        d.set_next(a, Lit::FALSE);
    }

    #[test]
    fn buses_are_lsb_first() {
        let mut d = Design::new("b");
        let bus = d.input_bus("in", 3);
        assert_eq!(d.inputs[0].0, "in[0]");
        assert_eq!(d.inputs[2].0, "in[2]");
        assert_eq!(bus.len(), 3);
    }
}
