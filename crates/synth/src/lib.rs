//! Logic synthesis: from a technology-independent boolean network to a
//! mapped gate-level netlist.
//!
//! This crate stands in for the commercial synthesis tool
//! (DesignAnalyzer) in the paper's flow. It provides:
//!
//! * [`Aig`] — an And-Inverter Graph with complemented edges and
//!   structural hashing (constant folding and common-subexpression
//!   elimination happen on construction);
//! * [`Design`] — a synchronous sequential design: an AIG plus named
//!   primary inputs/outputs and D-type registers;
//! * [`map_design`] — a cut-based technology mapper producing a
//!   [`secflow_netlist::Netlist`] over a [`secflow_cells::Library`],
//!   honouring a cell allowlist ([`MapOptions`], the paper's synthesis
//!   `script` constraints);
//! * a bit-parallel functional simulator for verification.
//!
//! # Example
//!
//! ```
//! use secflow_synth::{Design, MapOptions, map_design};
//! use secflow_cells::Library;
//!
//! let mut d = Design::new("toy");
//! let a = d.input("a");
//! let b = d.input("b");
//! let y = d.aig.and(a, b);
//! d.output("y", y);
//! let lib = Library::lib180();
//! let nl = map_design(&d, &lib, &MapOptions::default()).unwrap();
//! assert!(nl.validate().is_ok());
//! ```

mod aig;
mod design;
mod eval;
mod map;

pub use aig::{Aig, Lit, NodeId};
pub use design::{Design, Register};
pub use eval::{simulate_comb, simulate_seq, SeqState};
pub use map::{map_design, MapError, MapOptions};
