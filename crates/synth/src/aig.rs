//! And-Inverter Graph with complemented edges and structural hashing.

use std::collections::HashMap;

/// An AIG node index. Node 0 is the constant-false node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// A literal: a node reference with an optional complement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The constant-false literal.
    pub const FALSE: Lit = Lit(0);
    /// The constant-true literal.
    pub const TRUE: Lit = Lit(1);

    /// Builds a literal from a node and a complement flag.
    pub fn new(node: NodeId, complement: bool) -> Self {
        Lit(node.0 << 1 | complement as u32)
    }

    /// The underlying node.
    pub fn node(self) -> NodeId {
        NodeId(self.0 >> 1)
    }

    /// True if the literal is complemented.
    pub fn is_complement(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complemented literal (logical NOT).
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn not(self) -> Self {
        Lit(self.0 ^ 1)
    }
}

/// Node payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Node {
    /// Constant false (node 0 only).
    Const,
    /// An external leaf (primary input or register output), with its
    /// leaf index.
    Leaf(u32),
    /// Two-input AND of two literals.
    And(Lit, Lit),
}

/// An And-Inverter Graph.
///
/// All combinational logic is expressed as two-input ANDs with
/// complemented edges; [`Aig::and`] performs constant folding, trivial
/// simplification and structural hashing, so building an expression
/// twice yields the same literal (free CSE).
#[derive(Debug, Clone, Default)]
pub struct Aig {
    nodes: Vec<Node>,
    strash: HashMap<(Lit, Lit), NodeId>,
    n_leaves: u32,
}

impl Aig {
    /// Creates an empty AIG (just the constant node).
    pub fn new() -> Self {
        Aig {
            nodes: vec![Node::Const],
            strash: HashMap::new(),
            n_leaves: 0,
        }
    }

    /// Number of nodes, including the constant and leaves.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of AND nodes (the size metric used in reports).
    pub fn and_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::And(..)))
            .count()
    }

    /// Number of leaves created so far.
    pub fn leaf_count(&self) -> u32 {
        self.n_leaves
    }

    /// Creates a fresh leaf (primary input or register output) and
    /// returns its positive literal.
    pub fn leaf(&mut self) -> Lit {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::Leaf(self.n_leaves));
        self.n_leaves += 1;
        Lit::new(id, false)
    }

    /// Returns the leaf index of `node`, if it is a leaf.
    pub fn leaf_index(&self, node: NodeId) -> Option<u32> {
        match self.nodes[node.0 as usize] {
            Node::Leaf(i) => Some(i),
            _ => None,
        }
    }

    /// True if `node` is an AND node.
    pub fn is_and(&self, node: NodeId) -> bool {
        matches!(self.nodes[node.0 as usize], Node::And(..))
    }

    /// The fanins of an AND node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not an AND node.
    pub fn and_fanins(&self, node: NodeId) -> (Lit, Lit) {
        match self.nodes[node.0 as usize] {
            Node::And(a, b) => (a, b),
            _ => panic!("node {node:?} is not an AND"),
        }
    }

    /// Logical AND of two literals, with folding and hashing.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        // Normalize operand order for hashing.
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        // Constant / trivial folding.
        if a == Lit::FALSE || b == Lit::FALSE || a == b.not() {
            return Lit::FALSE;
        }
        if a == Lit::TRUE {
            return b;
        }
        if b == Lit::TRUE || a == b {
            return a;
        }
        if let Some(&id) = self.strash.get(&(a, b)) {
            return Lit::new(id, false);
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::And(a, b));
        self.strash.insert((a, b), id);
        Lit::new(id, false)
    }

    /// Logical OR (De Morgan on [`Aig::and`]).
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        self.and(a.not(), b.not()).not()
    }

    /// Logical XOR.
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let nand = self.and(a, b).not();
        let x = self.and(a, nand);
        let y = self.and(b, nand);
        self.and(x.not(), y.not()).not()
    }

    /// Multiplexer: `if s { t } else { e }`.
    pub fn mux(&mut self, s: Lit, t: Lit, e: Lit) -> Lit {
        let a = self.and(s, t);
        let b = self.and(s.not(), e);
        self.or(a, b)
    }

    /// AND over an iterator of literals (true for empty input).
    pub fn and_all(&mut self, lits: impl IntoIterator<Item = Lit>) -> Lit {
        lits.into_iter().fold(Lit::TRUE, |acc, l| self.and(acc, l))
    }

    /// OR over an iterator of literals (false for empty input).
    pub fn or_all(&mut self, lits: impl IntoIterator<Item = Lit>) -> Lit {
        lits.into_iter().fold(Lit::FALSE, |acc, l| self.or(acc, l))
    }

    /// Node ids in topological order (guaranteed by construction:
    /// fanins always precede their AND node).
    pub fn topo_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Reference counts: for each node, how many AND fanin edges plus
    /// `roots` literals point at it.
    pub fn reference_counts(&self, roots: &[Lit]) -> Vec<u32> {
        let mut refs = vec![0u32; self.nodes.len()];
        for n in &self.nodes {
            if let Node::And(a, b) = n {
                refs[a.node().0 as usize] += 1;
                refs[b.node().0 as usize] += 1;
            }
        }
        for r in roots {
            refs[r.node().0 as usize] += 1;
        }
        refs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding() {
        let l = Lit::new(NodeId(5), true);
        assert_eq!(l.node(), NodeId(5));
        assert!(l.is_complement());
        assert_eq!(l.not().node(), NodeId(5));
        assert!(!l.not().is_complement());
        assert_eq!(Lit::TRUE, Lit::FALSE.not());
    }

    #[test]
    fn constant_folding() {
        let mut g = Aig::new();
        let a = g.leaf();
        assert_eq!(g.and(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(g.and(a, Lit::TRUE), a);
        assert_eq!(g.and(a, a), a);
        assert_eq!(g.and(a, a.not()), Lit::FALSE);
        assert_eq!(g.and_count(), 0);
    }

    #[test]
    fn structural_hashing_dedups() {
        let mut g = Aig::new();
        let a = g.leaf();
        let b = g.leaf();
        let x = g.and(a, b);
        let y = g.and(b, a);
        assert_eq!(x, y);
        assert_eq!(g.and_count(), 1);
    }

    #[test]
    fn xor_uses_four_ands() {
        let mut g = Aig::new();
        let a = g.leaf();
        let b = g.leaf();
        let _x = g.xor(a, b);
        assert_eq!(g.and_count(), 4);
    }

    #[test]
    fn or_all_and_and_all() {
        let mut g = Aig::new();
        let lits: Vec<Lit> = (0..3).map(|_| g.leaf()).collect();
        assert_eq!(g.and_all([]), Lit::TRUE);
        assert_eq!(g.or_all([]), Lit::FALSE);
        let o = g.or_all(lits.clone());
        let a = g.and_all(lits);
        assert_ne!(o, a);
    }

    #[test]
    fn reference_counts_include_roots() {
        let mut g = Aig::new();
        let a = g.leaf();
        let b = g.leaf();
        let x = g.and(a, b);
        let refs = g.reference_counts(&[x]);
        assert_eq!(refs[x.node().0 as usize], 1);
        assert_eq!(refs[a.node().0 as usize], 1);
    }
}
