//! Cut-based technology mapping from an AIG onto a standard cell
//! library.
//!
//! The mapper enumerates K-feasible cuts per AND node, computes each
//! cut's local truth table, matches it against the library (under input
//! permutation, with optional output inversion), and selects covers by
//! area flow in a single topological pass — the classic DAG-mapper
//! recipe. The paper's synthesis `script` constraints (restricting
//! which gates synthesis may use) are honoured through
//! [`MapOptions::allowed_cells`].

use std::collections::{HashMap, HashSet};
use std::fmt;

use secflow_cells::{Library, MatchedCell, TruthTable};
use secflow_netlist::{GateKind, NetId, Netlist};

use crate::aig::{Aig, Lit, NodeId};
use crate::design::Design;

/// Mapper configuration.
#[derive(Debug, Clone)]
pub struct MapOptions {
    /// Maximum cut size (number of leaves). At most 6.
    pub cut_size: u8,
    /// Maximum number of cuts kept per node.
    pub cuts_per_node: usize,
    /// If set, only these library cells may be instantiated (plus
    /// `DFF`, `TIELO`, `TIEHI` for registers and constants).
    pub allowed_cells: Option<HashSet<String>>,
}

impl Default for MapOptions {
    fn default() -> Self {
        MapOptions {
            cut_size: 5,
            cuts_per_node: 8,
            allowed_cells: None,
        }
    }
}

/// Errors from technology mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// No library cell (combination) realizes some required function —
    /// e.g. the allowlist excludes every 2-input cell.
    Unmappable {
        /// Human-readable description of the failing function.
        reason: String,
    },
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::Unmappable { reason } => write!(f, "unmappable function: {reason}"),
        }
    }
}

impl std::error::Error for MapError {}

/// A cut: a sorted set of leaf nodes.
type Cut = Vec<NodeId>;

struct Mapper<'a> {
    aig: &'a Aig,
    lib: &'a Library,
    opts: &'a MapOptions,
    /// Kept cuts per node.
    cuts: Vec<Vec<Cut>>,
    /// Match cache keyed by (vars, tt bits).
    match_cache: HashMap<(u8, u64), Option<MatchedCell>>,
    /// Chosen (cut, match) per AND node.
    chosen: Vec<Option<(Cut, MatchedCell)>>,
    /// Area-flow value per node.
    aflow: Vec<f64>,
    refs: Vec<u32>,
}

impl<'a> Mapper<'a> {
    fn new(aig: &'a Aig, lib: &'a Library, opts: &'a MapOptions, roots: &[Lit]) -> Self {
        let n = aig.node_count();
        Mapper {
            aig,
            lib,
            opts,
            cuts: vec![Vec::new(); n],
            match_cache: HashMap::new(),
            chosen: vec![None; n],
            aflow: vec![0.0; n],
            refs: aig.reference_counts(roots),
        }
    }

    /// Computes the function of `node` over the leaves of `cut`.
    fn cut_tt(&self, node: NodeId, cut: &Cut) -> TruthTable {
        let n = cut.len() as u8;
        let mut memo: HashMap<NodeId, TruthTable> = HashMap::new();
        for (i, &leaf) in cut.iter().enumerate() {
            memo.insert(leaf, TruthTable::var(n, i as u8));
        }
        self.tt_rec(node, n, &mut memo)
    }

    #[allow(clippy::only_used_in_recursion)]
    fn tt_rec(&self, node: NodeId, n: u8, memo: &mut HashMap<NodeId, TruthTable>) -> TruthTable {
        if let Some(t) = memo.get(&node) {
            return *t;
        }
        let (a, b) = self.aig.and_fanins(node);
        let ta = {
            let t = self.tt_rec(a.node(), n, memo);
            if a.is_complement() {
                t.not()
            } else {
                t
            }
        };
        let tb = {
            let t = self.tt_rec(b.node(), n, memo);
            if b.is_complement() {
                t.not()
            } else {
                t
            }
        };
        let t = ta.and(&tb);
        memo.insert(node, t);
        t
    }

    /// Looks up (with caching) the best library match for `tt`.
    fn find_match(&mut self, tt: &TruthTable) -> Option<MatchedCell> {
        let key = (tt.vars(), tt.bits());
        if let Some(m) = self.match_cache.get(&key) {
            return m.clone();
        }
        let m = match self.opts.allowed_cells.as_ref() {
            Some(set) => {
                let f = |name: &str| set.contains(name);
                self.lib.find_match(tt, Some(&f))
            }
            None => self.lib.find_match(tt, None),
        };
        self.match_cache.insert(key, m.clone());
        m
    }

    /// Enumerates cuts and runs the area-flow DP for one AND node.
    fn process_and(&mut self, id: NodeId) -> Result<(), MapError> {
        let (fa, fb) = self.aig.and_fanins(id);
        let ca = self.cuts[fa.node().0 as usize].clone();
        let cb = self.cuts[fb.node().0 as usize].clone();
        let mut merged: Vec<Cut> = Vec::new();
        for a in &ca {
            for b in &cb {
                let mut u: Cut = a.iter().chain(b.iter()).copied().collect();
                u.sort_unstable();
                u.dedup();
                if u.len() <= self.opts.cut_size as usize && !merged.contains(&u) {
                    merged.push(u);
                }
            }
        }
        // Prefer smaller cuts when truncating.
        merged.sort_by_key(|c| c.len());
        merged.truncate(self.opts.cuts_per_node);

        // DP: choose the cut+match with the lowest area flow.
        let mut best: Option<(f64, Cut, MatchedCell)> = None;
        for cut in &merged {
            let raw_tt = self.cut_tt(id, cut);
            // Drop leaves the function does not depend on.
            let (tt, cut) = compress(&raw_tt, cut);
            if tt.vars() == 0 {
                continue; // constant — handled via folding, skip
            }
            let Some(m) = self.find_match(&tt) else {
                continue;
            };
            let leaf_flow: f64 = cut.iter().map(|l| self.aflow[l.0 as usize]).sum();
            let cost = m.area_um2 + leaf_flow;
            if best.as_ref().is_none_or(|(c, _, _)| cost < *c) {
                best = Some((cost, cut, m));
            }
        }
        let (cost, cut, m) = best.ok_or_else(|| MapError::Unmappable {
            reason: format!("no cell matches any cut of node {id:?}"),
        })?;
        self.aflow[id.0 as usize] = cost / f64::from(self.refs[id.0 as usize].max(1));
        self.chosen[id.0 as usize] = Some((cut, m));

        // Kept cuts for parents: merged cuts plus the trivial cut.
        let mut kept = merged;
        kept.insert(0, vec![id]);
        kept.truncate(self.opts.cuts_per_node);
        self.cuts[id.0 as usize] = kept;
        Ok(())
    }

    fn run(&mut self) -> Result<(), MapError> {
        for id in self.aig.topo_nodes() {
            if self.aig.leaf_index(id).is_some() {
                self.cuts[id.0 as usize] = vec![vec![id]];
            } else if self.aig.is_and(id) {
                self.process_and(id)?;
            } else {
                // Constant node: no cuts.
                self.cuts[id.0 as usize] = Vec::new();
            }
        }
        Ok(())
    }
}

/// Removes irrelevant variables from a cut function.
fn compress(tt: &TruthTable, cut: &Cut) -> (TruthTable, Cut) {
    let support = tt.support();
    if support.len() == tt.vars() as usize {
        return (*tt, cut.clone());
    }
    let new_cut: Cut = support.iter().map(|&v| cut[v as usize]).collect();
    let n = support.len() as u8;
    let compressed = TruthTable::from_fn(n, |a| {
        let mut full = 0u32;
        for (i, &v) in support.iter().enumerate() {
            if a >> i & 1 == 1 {
                full |= 1 << v;
            }
        }
        tt.eval(full)
    });
    (compressed, new_cut)
}

/// Maps `design` onto `lib`, returning a flat gate-level netlist.
///
/// Primary inputs keep their names; primary outputs and register
/// outputs drive nets carrying their declared names. Inverted literals
/// are realized with `INV` cells; constant outputs with `TIELO` /
/// `TIEHI`.
///
/// # Errors
///
/// Returns [`MapError::Unmappable`] if some required function has no
/// realization in the (possibly restricted) library.
pub fn map_design(design: &Design, lib: &Library, opts: &MapOptions) -> Result<Netlist, MapError> {
    let roots = design.roots();
    let mut mapper = Mapper::new(&design.aig, lib, opts, &roots);
    mapper.run()?;

    // Which nodes are actually needed by the cover?
    let mut needed: HashSet<NodeId> = HashSet::new();
    let mut stack: Vec<NodeId> = roots.iter().map(|l| l.node()).collect();
    while let Some(n) = stack.pop() {
        if design.aig.leaf_index(n).is_some() || n == NodeId(0) {
            continue;
        }
        if !needed.insert(n) {
            continue;
        }
        let (cut, _) = mapper.chosen[n.0 as usize]
            .as_ref()
            .expect("needed AND node has a chosen cover");
        stack.extend(cut.iter().copied());
    }

    let mut nl = Netlist::new(design.name.clone());

    // Nets for leaves: primary inputs and register outputs.
    let mut node_net: HashMap<NodeId, NetId> = HashMap::new();
    for (name, l) in &design.inputs {
        let id = nl.add_input(name.clone());
        node_net.insert(l.node(), id);
    }
    for r in &design.registers {
        let id = nl.add_net(r.name.clone());
        node_net.insert(r.q.node(), id);
    }

    // Nets for covered AND nodes, created in topo order.
    let mut ordered: Vec<NodeId> = needed.iter().copied().collect();
    ordered.sort();
    for &n in &ordered {
        let id = nl.fresh_net("w");
        node_net.insert(n, id);
    }

    // Gate instances. Inverted pin phases share one INV per node.
    let mut gate_n = 0usize;
    let mut inv_cache: HashMap<NodeId, NetId> = HashMap::new();
    for &n in &ordered {
        let (cut, m) = mapper.chosen[n.0 as usize].clone().expect("chosen");
        // The match permutation maps cell pin i -> cut variable
        // m.perm[i], inverted when m.input_neg[i] is set.
        let inputs: Vec<NetId> = m
            .perm
            .iter()
            .zip(&m.input_neg)
            .map(|(&v, &neg)| {
                let node = cut[v as usize];
                let net = node_net[&node];
                if !neg {
                    return net;
                }
                if let Some(&inv) = inv_cache.get(&node) {
                    return inv;
                }
                let inv = nl.fresh_net("ni");
                nl.add_gate(
                    format!("u{gate_n}"),
                    "INV",
                    GateKind::Comb,
                    vec![net],
                    vec![inv],
                );
                gate_n += 1;
                inv_cache.insert(node, inv);
                inv
            })
            .collect();
        let out_net = node_net[&n];
        if m.inverted {
            let mid = nl.fresh_net("inv_in");
            nl.add_gate(
                format!("u{gate_n}"),
                m.cell.clone(),
                GateKind::Comb,
                inputs,
                vec![mid],
            );
            gate_n += 1;
            nl.add_gate(
                format!("u{gate_n}"),
                "INV",
                GateKind::Comb,
                vec![mid],
                vec![out_net],
            );
        } else {
            nl.add_gate(
                format!("u{gate_n}"),
                m.cell.clone(),
                GateKind::Comb,
                inputs,
                vec![out_net],
            );
        }
        gate_n += 1;
    }

    // Literal resolution with INV/tie sharing.
    let mut lit_nets: HashMap<Lit, NetId> = HashMap::new();
    let mut resolve = |nl: &mut Netlist, l: Lit, gate_n: &mut usize| -> NetId {
        if let Some(&id) = lit_nets.get(&l) {
            return id;
        }
        let id = if l == Lit::FALSE || l == Lit::TRUE {
            let id = nl.fresh_net("tie");
            let cell = if l == Lit::TRUE { "TIEHI" } else { "TIELO" };
            nl.add_gate(format!("u{gate_n}"), cell, GateKind::Tie, vec![], vec![id]);
            *gate_n += 1;
            id
        } else if !l.is_complement() {
            node_net[&l.node()]
        } else {
            let src = node_net[&l.node()];
            let id = nl.fresh_net("nb");
            nl.add_gate(
                format!("u{gate_n}"),
                "INV",
                GateKind::Comb,
                vec![src],
                vec![id],
            );
            *gate_n += 1;
            id
        };
        lit_nets.insert(l, id);
        id
    };

    // Registers: DFF between resolved next-state net and Q net.
    for r in &design.registers {
        let d_net = resolve(&mut nl, r.next, &mut gate_n);
        let q_net = node_net[&r.q.node()];
        nl.add_gate(
            format!("r_{}", r.name),
            "DFF",
            GateKind::Seq,
            vec![d_net],
            vec![q_net],
        );
    }

    // Primary outputs.
    let mut claimed: HashSet<NetId> = HashSet::new();
    for (name, l) in &design.outputs {
        let src = resolve(&mut nl, *l, &mut gate_n);
        if claimed.insert(src) {
            nl.mark_output(src);
        } else {
            // The same literal drives several ports: buffer a copy.
            let id = nl.add_net(name.clone());
            nl.add_gate(
                format!("u{gate_n}"),
                "BUF",
                GateKind::Comb,
                vec![src],
                vec![id],
            );
            gate_n += 1;
            nl.mark_output(id);
        }
    }

    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::Design;
    use crate::eval::simulate_comb;
    use secflow_cells::CellFunction;

    /// Evaluates a mapped combinational netlist on one input pattern.
    fn eval_netlist(nl: &Netlist, lib: &Library, inputs: &[(NetId, bool)]) -> Vec<bool> {
        let mut values: Vec<Option<bool>> = vec![None; nl.net_count()];
        for &(n, v) in inputs {
            values[n.index()] = Some(v);
        }
        let order = secflow_netlist::topo_order(nl).expect("acyclic");
        for gid in order {
            let g = nl.gate(gid);
            let cell = lib.by_name(&g.cell).expect("cell exists");
            match cell.function() {
                CellFunction::Comb(tt) => {
                    let mut idx = 0u32;
                    for (i, &inp) in g.inputs.iter().enumerate() {
                        if values[inp.index()].expect("input ready") {
                            idx |= 1 << i;
                        }
                    }
                    values[g.outputs[0].index()] = Some(tt.eval(idx));
                }
                CellFunction::Tie(v) => values[g.outputs[0].index()] = Some(*v),
                CellFunction::Dff | CellFunction::WddlDff => {
                    panic!("combinational test only")
                }
            }
        }
        nl.outputs()
            .iter()
            .map(|&o| values[o.index()].expect("output driven"))
            .collect()
    }

    fn check_equiv(d: &Design, nl: &Netlist, lib: &Library) {
        let n_in = d.inputs.len();
        assert!(n_in <= 12, "exhaustive check only for small designs");
        for pat in 0..(1u32 << n_in) {
            let inputs: Vec<(NetId, bool)> = d
                .inputs
                .iter()
                .enumerate()
                .map(|(i, (name, _))| (nl.net_by_name(name).expect("input net"), pat >> i & 1 == 1))
                .collect();
            let got = eval_netlist(nl, lib, &inputs);
            let in_words: Vec<u64> = (0..n_in)
                .map(|i| if pat >> i & 1 == 1 { !0u64 } else { 0 })
                .collect();
            let (outs, _) = simulate_comb(d, &in_words, &[]);
            for (g, w) in got.iter().zip(&outs) {
                assert_eq!(*g, *w & 1 == 1, "mismatch at pattern {pat:b}");
            }
        }
    }

    #[test]
    fn maps_simple_and() {
        let mut d = Design::new("t");
        let a = d.input("a");
        let b = d.input("b");
        let y = d.aig.and(a, b);
        d.output("y", y);
        let lib = Library::lib180();
        let nl = map_design(&d, &lib, &MapOptions::default()).unwrap();
        assert!(nl.validate().is_ok());
        check_equiv(&d, &nl, &lib);
    }

    #[test]
    fn maps_xor_mux_mix() {
        let mut d = Design::new("t");
        let a = d.input("a");
        let b = d.input("b");
        let c = d.input("c");
        let s = d.input("s");
        let x = d.aig.xor(a, b);
        let m = d.aig.mux(s, x, c);
        let z = d.aig.or(m, a.not());
        d.output("m", m);
        d.output("z", z);
        let lib = Library::lib180();
        let nl = map_design(&d, &lib, &MapOptions::default()).unwrap();
        assert!(nl.validate().is_ok());
        check_equiv(&d, &nl, &lib);
    }

    #[test]
    fn maps_constants_and_inversions() {
        let mut d = Design::new("t");
        let a = d.input("a");
        d.output("k0", Lit::FALSE);
        d.output("k1", Lit::TRUE);
        d.output("na", a.not());
        let lib = Library::lib180();
        let nl = map_design(&d, &lib, &MapOptions::default()).unwrap();
        assert!(nl.validate().is_ok());
        check_equiv(&d, &nl, &lib);
        let hist = nl.cell_histogram();
        assert!(hist.iter().any(|(c, _)| c == "TIELO"));
        assert!(hist.iter().any(|(c, _)| c == "TIEHI"));
        assert!(hist.iter().any(|(c, _)| c == "INV"));
    }

    #[test]
    fn maps_sequential_design() {
        let mut d = Design::new("cnt");
        let q = d.register_bus("q", 2);
        let n0 = q[0].not();
        let n1 = d.aig.xor(q[1], q[0]);
        d.set_next_bus(&q, &[n0, n1]);
        d.output_bus("count", &q);
        let lib = Library::lib180();
        let nl = map_design(&d, &lib, &MapOptions::default()).unwrap();
        assert!(nl.validate().is_ok());
        assert_eq!(nl.gates().iter().filter(|g| g.cell == "DFF").count(), 2);
    }

    #[test]
    fn allowlist_restricts_cells() {
        let mut d = Design::new("t");
        let a = d.input("a");
        let b = d.input("b");
        let y = d.aig.and(a, b);
        let z = d.aig.or(a, b);
        d.output("y", y);
        d.output("z", z);
        let lib = Library::lib180();
        let allowed: HashSet<String> = ["AND2", "OR2", "INV"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let opts = MapOptions {
            allowed_cells: Some(allowed.clone()),
            ..Default::default()
        };
        let nl = map_design(&d, &lib, &opts).unwrap();
        for g in nl.gates() {
            assert!(
                allowed.contains(&g.cell) || matches!(g.cell.as_str(), "DFF" | "TIELO" | "TIEHI"),
                "forbidden cell {}",
                g.cell
            );
        }
        check_equiv(&d, &nl, &lib);
    }

    #[test]
    fn empty_allowlist_fails() {
        let mut d = Design::new("t");
        let a = d.input("a");
        let b = d.input("b");
        let y = d.aig.and(a, b);
        d.output("y", y);
        let lib = Library::lib180();
        let opts = MapOptions {
            allowed_cells: Some(HashSet::new()),
            ..Default::default()
        };
        assert!(matches!(
            map_design(&d, &lib, &opts),
            Err(MapError::Unmappable { .. })
        ));
    }

    #[test]
    fn shared_output_literal_gets_buffer() {
        let mut d = Design::new("t");
        let a = d.input("a");
        let b = d.input("b");
        let y = d.aig.and(a, b);
        d.output("y1", y);
        d.output("y2", y);
        let lib = Library::lib180();
        let nl = map_design(&d, &lib, &MapOptions::default()).unwrap();
        assert!(nl.validate().is_ok());
        assert_eq!(nl.outputs().len(), 2);
        assert_ne!(nl.outputs()[0], nl.outputs()[1]);
        check_equiv(&d, &nl, &lib);
    }

    #[test]
    fn compress_drops_dead_vars() {
        // f over 3 vars depending only on var 2.
        let tt = TruthTable::from_fn(3, |x| x >> 2 & 1 == 1);
        let cut = vec![NodeId(5), NodeId(6), NodeId(7)];
        let (ctt, ccut) = compress(&tt, &cut);
        assert_eq!(ctt.vars(), 1);
        assert_eq!(ccut, vec![NodeId(7)]);
    }

    #[test]
    fn bigger_random_logic_maps_correctly() {
        // A deterministic pseudo-random expression tree over 8 inputs.
        let mut d = Design::new("rand");
        let ins: Vec<Lit> = (0..8).map(|i| d.input(format!("i{i}"))).collect();
        let mut pool = ins.clone();
        let mut state = 0x12345678u64;
        let mut next = |m: usize| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize % m
        };
        for k in 0..40 {
            let a = pool[next(pool.len())];
            let b = pool[next(pool.len())];
            let l = match k % 3 {
                0 => d.aig.and(a, b),
                1 => d.aig.or(a, b.not()),
                _ => d.aig.xor(a, b),
            };
            pool.push(l);
        }
        let last = *pool.last().unwrap();
        let mid = pool[pool.len() / 2];
        d.output("y0", last);
        d.output("y1", mid.not());
        let lib = Library::lib180();
        let nl = map_design(&d, &lib, &MapOptions::default()).unwrap();
        assert!(nl.validate().is_ok());
        check_equiv(&d, &nl, &lib);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::design::Design;
    use crate::eval::simulate_comb;

    /// A random expression program: each step combines two earlier
    /// values with one of the AIG operators.
    #[derive(Debug, Clone, Copy)]
    enum Op {
        And,
        Or,
        Xor,
        AndNot,
        Mux,
    }

    const OPS: [Op; 5] = [Op::And, Op::Or, Op::Xor, Op::AndNot, Op::Mux];

    /// Mapping any random expression DAG preserves its function
    /// (checked exhaustively over all input assignments).
    #[test]
    fn mapping_preserves_function() {
        secflow_testkit::prop_check!(cases: 24, seed: 0x3A90_0001, |g| {
            let n_inputs = g.random_range(2..7usize);
            let steps = g.vec_with(1..28, |g| {
                (
                    *g.choose(&OPS),
                    g.random::<u16>(),
                    g.random::<u16>(),
                    g.random::<u16>(),
                    g.random::<bool>(),
                )
            });
            let mut d = Design::new("rand");
            let mut pool: Vec<Lit> = (0..n_inputs)
                .map(|i| d.input(format!("i{i}")))
                .collect();
            for (op, a, b, c, neg) in &steps {
                let pa = pool[*a as usize % pool.len()];
                let pb = pool[*b as usize % pool.len()];
                let pc = pool[*c as usize % pool.len()];
                let mut l = match op {
                    Op::And => d.aig.and(pa, pb),
                    Op::Or => d.aig.or(pa, pb),
                    Op::Xor => d.aig.xor(pa, pb),
                    Op::AndNot => d.aig.and(pa, pb.not()),
                    Op::Mux => d.aig.mux(pc, pa, pb),
                };
                if *neg {
                    l = l.not();
                }
                pool.push(l);
            }
            let y = *pool.last().expect("non-empty pool");
            d.output("y", y);
            let lib = Library::lib180();
            let nl = map_design(&d, &lib, &MapOptions::default()).expect("mappable");
            assert!(nl.validate().is_ok());

            // Exhaustive equivalence via bit-parallel reference
            // evaluation and gate-level netlist evaluation.
            for pat in 0..(1u32 << n_inputs) {
                let words: Vec<u64> = (0..n_inputs)
                    .map(|i| if pat >> i & 1 == 1 { !0u64 } else { 0 })
                    .collect();
                let (outs, _) = simulate_comb(&d, &words, &[]);
                let want = outs[0] & 1 == 1;

                let mut values = vec![false; nl.net_count()];
                for (i, (_, _)) in d.inputs.iter().enumerate() {
                    let net = nl.net_by_name(&format!("i{i}")).expect("input net");
                    values[net.index()] = pat >> i & 1 == 1;
                }
                let order = secflow_netlist::topo_order(&nl).expect("acyclic");
                for gid in order {
                    let g = nl.gate(gid);
                    let cell = lib.by_name(&g.cell).expect("cell");
                    match cell.function() {
                        secflow_cells::CellFunction::Comb(tt) => {
                            let mut idx = 0u32;
                            for (i, &inp) in g.inputs.iter().enumerate() {
                                if values[inp.index()] {
                                    idx |= 1 << i;
                                }
                            }
                            values[g.outputs[0].index()] = tt.eval(idx);
                        }
                        secflow_cells::CellFunction::Tie(v) => {
                            values[g.outputs[0].index()] = *v;
                        }
                        _ => {}
                    }
                }
                let got = values[nl.outputs()[0].index()];
                assert_eq!(got, want, "pattern {pat:#b}");
            }
        });
    }
}
