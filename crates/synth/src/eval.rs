//! Bit-parallel functional evaluation of designs (64 patterns per
//! word), used for verification and tests.

use crate::aig::{Aig, Lit};
use crate::design::Design;

/// Evaluates every node of `aig` under the given leaf values (one
/// 64-pattern word per leaf, indexed by leaf index) and returns a
/// per-node value vector.
fn eval_nodes(aig: &Aig, leaf_values: &[u64]) -> Vec<u64> {
    let mut val = vec![0u64; aig.node_count()];
    for id in aig.topo_nodes() {
        let idx = id.0 as usize;
        if let Some(li) = aig.leaf_index(id) {
            val[idx] = leaf_values[li as usize];
        } else if aig.is_and(id) {
            let (a, b) = aig.and_fanins(id);
            val[idx] = lit_value(&val, a) & lit_value(&val, b);
        }
        // Const node stays 0.
    }
    val
}

#[inline]
fn lit_value(val: &[u64], l: Lit) -> u64 {
    let v = val[l.node().0 as usize];
    if l.is_complement() {
        !v
    } else {
        v
    }
}

/// Evaluates the combinational outputs of `design` for 64 input
/// patterns at once. Register outputs are taken from `reg_values`
/// (64 patterns per register, same order as `design.registers`).
///
/// Returns `(outputs, next_states)`.
pub fn simulate_comb(
    design: &Design,
    input_values: &[u64],
    reg_values: &[u64],
) -> (Vec<u64>, Vec<u64>) {
    assert_eq!(input_values.len(), design.inputs.len());
    assert_eq!(reg_values.len(), design.registers.len());
    let mut leaves = vec![0u64; design.aig.leaf_count() as usize];
    for ((_, l), &v) in design.inputs.iter().zip(input_values) {
        leaves[design.aig.leaf_index(l.node()).expect("input is a leaf") as usize] = v;
    }
    for (r, &v) in design.registers.iter().zip(reg_values) {
        leaves[design
            .aig
            .leaf_index(r.q.node())
            .expect("register q is a leaf") as usize] = v;
    }
    let val = eval_nodes(&design.aig, &leaves);
    let outs = design
        .outputs
        .iter()
        .map(|(_, l)| lit_value(&val, *l))
        .collect();
    let nexts = design
        .registers
        .iter()
        .map(|r| lit_value(&val, r.next))
        .collect();
    (outs, nexts)
}

/// Sequential simulation state: one 64-pattern word per register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqState {
    /// Current register values (64 parallel patterns each).
    pub regs: Vec<u64>,
}

impl SeqState {
    /// All-zero reset state for `design`.
    pub fn reset(design: &Design) -> Self {
        SeqState {
            regs: vec![0; design.registers.len()],
        }
    }
}

/// Advances `state` by one clock cycle under the given inputs and
/// returns the primary output values *before* the clock edge
/// (Mealy-style: outputs are functions of current state and inputs).
pub fn simulate_seq(design: &Design, state: &mut SeqState, input_values: &[u64]) -> Vec<u64> {
    let (outs, nexts) = simulate_comb(design, input_values, &state.regs);
    state.regs = nexts;
    outs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::Design;

    #[test]
    fn comb_evaluation_matches_expression() {
        let mut d = Design::new("f");
        let a = d.input("a");
        let b = d.input("b");
        let c = d.input("c");
        let ab = d.aig.and(a, b);
        let y = d.aig.or(ab, c.not());
        d.output("y", y);
        // Exhaustive over 8 assignments packed in one word.
        let av = 0b10101010u64;
        let bv = 0b11001100u64;
        let cv = 0b11110000u64;
        let (outs, _) = simulate_comb(&d, &[av, bv, cv], &[]);
        let expect = (av & bv) | !cv;
        assert_eq!(outs[0] & 0xff, expect & 0xff);
    }

    #[test]
    fn sequential_counter_counts() {
        let mut d = Design::new("cnt");
        let q = d.register_bus("q", 2);
        let n0 = q[0].not();
        let n1 = d.aig.xor(q[1], q[0]);
        d.set_next_bus(&q, &[n0, n1]);
        d.output_bus("count", &q);
        let mut st = SeqState::reset(&d);
        let mut seen = Vec::new();
        for _ in 0..5 {
            let outs = simulate_seq(&d, &mut st, &[]);
            let v = (outs[0] & 1) | (outs[1] & 1) << 1;
            seen.push(v);
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 0]);
    }

    #[test]
    fn xor_truth() {
        let mut d = Design::new("x");
        let a = d.input("a");
        let b = d.input("b");
        let y = d.aig.xor(a, b);
        d.output("y", y);
        let (outs, _) = simulate_comb(&d, &[0b0101, 0b0011], &[]);
        assert_eq!(outs[0] & 0xf, 0b0110);
    }
}
