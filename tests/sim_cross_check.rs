//! Cross-validation of the three functional models: the event-driven
//! power simulator, the zero-delay functional simulator and the
//! bit-parallel AIG evaluator must all agree with the software
//! reference on the DES module.

use secflow::cells::Library;
use secflow::crypto::dpa_module::{des_dpa_design, encrypt};
use secflow::flow::{run_secure_flow, FlowOptions};
use secflow::sim::functional::run_cycles;
use secflow::sim::{simulate_single_ended, SimConfig};
use secflow::synth::{map_design, simulate_seq, MapOptions, SeqState};

fn stimuli() -> Vec<(u8, u8)> {
    (0..24u32)
        .map(|i| {
            let x = i.wrapping_mul(2654435761);
            ((x >> 7 & 15) as u8, (x >> 13 & 63) as u8)
        })
        .collect()
}

fn vectors(key: u8) -> Vec<Vec<bool>> {
    let mut v = Vec::new();
    for &(pl, pr) in &stimuli() {
        let mut row = Vec::with_capacity(16);
        for i in 0..4 {
            row.push(pl >> i & 1 == 1);
        }
        for i in 0..6 {
            row.push(pr >> i & 1 == 1);
        }
        for i in 0..6 {
            row.push(key >> i & 1 == 1);
        }
        v.push(row);
    }
    // Flush cycles: plaintext zero, key held.
    for _ in 0..2 {
        let mut row = vec![false; 10];
        for i in 0..6 {
            row.push(key >> i & 1 == 1);
        }
        v.push(row);
    }
    v
}

fn decode(outs: &[bool]) -> (u8, u8) {
    let cl = (0..4).fold(0u8, |a, j| a | ((outs[j] as u8) << j));
    let cr = (0..6).fold(0u8, |a, j| a | ((outs[4 + j] as u8) << j));
    (cl, cr)
}

#[test]
fn all_simulators_agree_with_the_model() {
    let key = 46u8;
    let design = des_dpa_design();
    let lib = Library::lib180();
    let nl = map_design(&design, &lib, &MapOptions::default()).expect("mapping");
    let vecs = vectors(key);

    // 1. AIG-level sequential simulation.
    let mut st = SeqState::reset(&design);
    let mut aig_out = Vec::new();
    for v in &vecs {
        let words: Vec<u64> = v.iter().map(|&b| if b { !0 } else { 0 }).collect();
        let outs = simulate_seq(&design, &mut st, &words);
        aig_out.push(decode(
            &outs.iter().map(|&w| w & 1 == 1).collect::<Vec<_>>(),
        ));
    }

    // 2. Zero-delay gate-level simulation of the mapped netlist.
    let func_out: Vec<(u8, u8)> = run_cycles(&nl, &lib, &vecs)
        .unwrap()
        .iter()
        .map(|o| decode(o))
        .collect();

    // 3. Event-driven timing simulation.
    let cfg = SimConfig {
        samples_per_cycle: 100,
        ..Default::default()
    };
    let sim = simulate_single_ended(&nl, &lib, None, &cfg, &vecs).unwrap();
    let event_out: Vec<(u8, u8)> = sim.outputs_per_cycle.iter().map(|o| decode(o)).collect();

    // 4. Software model (2-cycle pipeline latency).
    for (i, &(pl, pr)) in stimuli().iter().enumerate() {
        let expect = encrypt(pl, pr, key);
        assert_eq!(aig_out[i + 2], expect, "AIG sim at {i}");
        assert_eq!(func_out[i + 2], expect, "functional sim at {i}");
        assert_eq!(event_out[i + 2], expect, "event sim at {i}");
    }
}

#[test]
fn secure_flow_differential_sim_agrees_with_model() {
    let key = 46u8;
    let design = des_dpa_design();
    let lib = Library::lib180();
    let opts = FlowOptions {
        anneal_moves_per_gate: 40,
        ..Default::default()
    };
    let sec = run_secure_flow(&design, &lib, &opts).expect("secure flow");
    let sub = &sec.substitution;
    let cfg = SimConfig {
        samples_per_cycle: 100,
        ..Default::default()
    };
    let vecs = vectors(key);
    let sim = secflow::sim::simulate_wddl(
        &sub.differential,
        &sub.diff_lib,
        Some(&sec.parasitics),
        &cfg,
        &sub.input_pairs,
        &vecs,
    )
    .unwrap();
    // No alarms at the nominal clock.
    assert!(sim.wddl_alarms.iter().all(|&a| a == 0));
    for (i, &(pl, pr)) in stimuli().iter().enumerate() {
        let outs: Vec<bool> = sim.outputs_per_cycle[i + 2]
            .chunks(2)
            .map(|pair| pair[0])
            .collect();
        assert_eq!(decode(&outs), encrypt(pl, pr, key), "WDDL sim at {i}");
    }
}
