//! Golden-file round trip on the Fig. 4 DES module.
//!
//! The golden netlists under `tests/golden/` are the structural
//! Verilog of the mapped (regular) and WDDL differential
//! implementations, checked in so that any change to the mapper, the
//! WDDL substitution or the Verilog writer/parser shows up as a
//! reviewable diff. Regenerate deliberately with
//! `cargo run --example gen_golden`.

use secflow::cells::Library;
use secflow::crypto::dpa_module::des_dpa_design;
use secflow::flow::substitute;
use secflow::netlist::{parse_verilog, structurally_equal, write_verilog, Netlist};
use secflow::synth::{map_design, MapOptions};

const GOLDEN_REGULAR: &str = include_str!("golden/des_regular.v");
const GOLDEN_WDDL: &str = include_str!("golden/des_wddl.v");

fn current() -> (Netlist, Netlist) {
    let design = des_dpa_design();
    let lib = Library::lib180();
    let mapped = map_design(&design, &lib, &MapOptions::default()).expect("mapping");
    let differential = substitute(&mapped, &lib)
        .expect("substitution")
        .differential;
    (mapped, differential)
}

#[test]
fn golden_regular_netlist_round_trips() {
    let (mapped, _) = current();

    // write → parse → structurally equal, against the live netlist.
    let parsed = parse_verilog(&write_verilog(&mapped), &["DFF"]).expect("parse own output");
    assert!(structurally_equal(&mapped, &parsed));

    // The checked-in golden parses and matches the live netlist.
    let golden = parse_verilog(GOLDEN_REGULAR, &["DFF"]).expect("parse golden");
    assert!(golden.validate().is_ok());
    assert!(
        structurally_equal(&mapped, &golden),
        "mapped DES module drifted from tests/golden/des_regular.v; \
         if intentional, regenerate with `cargo run --example gen_golden`"
    );

    // Writer stability: emitting the live netlist reproduces the
    // golden file byte-for-byte.
    assert_eq!(write_verilog(&mapped), GOLDEN_REGULAR);
}

#[test]
fn golden_wddl_netlist_round_trips() {
    let (_, differential) = current();

    let parsed =
        parse_verilog(&write_verilog(&differential), &["WDDLDFF"]).expect("parse own output");
    assert!(structurally_equal(&differential, &parsed));

    let golden = parse_verilog(GOLDEN_WDDL, &["WDDLDFF"]).expect("parse golden");
    assert!(golden.validate().is_ok());
    assert!(
        structurally_equal(&differential, &golden),
        "WDDL differential netlist drifted from tests/golden/des_wddl.v; \
         if intentional, regenerate with `cargo run --example gen_golden`"
    );

    assert_eq!(write_verilog(&differential), GOLDEN_WDDL);
}
