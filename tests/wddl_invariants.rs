//! Cross-crate WDDL invariant checks on a variety of designs: the
//! substitution must always produce an equivalent fat netlist, a
//! precharging differential netlist, and complementary rails.

use secflow::cells::Library;
use secflow::crypto::des::sbox_circuit;
use secflow::flow::{substitute, verify_precharge_wave, verify_rail_complementarity};
use secflow::lec::check_equiv_with_parity;
use secflow::netlist::Netlist;
use secflow::synth::{map_design, Design, MapOptions};

fn designs() -> Vec<Design> {
    let mut out = Vec::new();

    // A 4-bit counter with enable.
    let mut d = Design::new("counter");
    let en = d.input("en");
    let q = d.register_bus("q", 4);
    let mut carry = en;
    for &qi in &q {
        let next = d.aig.xor(qi, carry);
        carry = d.aig.and(carry, qi);
        d.set_next(qi, next);
    }
    d.output_bus("count", &q);
    out.push(d);

    // DES S-box 3 (pure combinational, inversion-heavy after mapping).
    let mut d = Design::new("sbox3");
    let ins = d.input_bus("x", 6);
    let aig_out = sbox_circuit(&mut d.aig, 2, &ins);
    d.output_bus("y", &aig_out);
    out.push(d);

    // A comparator with constants.
    let mut d = Design::new("cmp");
    let a = d.input_bus("a", 3);
    let b = d.input_bus("b", 3);
    let mut eq = secflow::synth::Lit::TRUE;
    for (x, y) in a.iter().zip(&b) {
        let bit_eq = {
            let x = *x;
            let y = *y;
            let xo = d.aig.xor(x, y);
            xo.not()
        };
        eq = d.aig.and(eq, bit_eq);
    }
    d.output("eq", eq);
    d.output("always0", secflow::synth::Lit::FALSE);
    out.push(d);

    out
}

fn mapped(d: &Design, lib: &Library) -> Netlist {
    map_design(d, lib, &MapOptions::default()).expect("mapping")
}

#[test]
fn substitution_invariants_hold_across_designs() {
    let lib = Library::lib180();
    for d in designs() {
        let nl = mapped(&d, &lib);
        let sub = substitute(&nl, &lib)
            .unwrap_or_else(|e| panic!("substitution of `{}` failed: {e}", d.name));

        // 1. Structural validity.
        sub.fat.validate().expect("fat netlist valid");
        sub.differential.validate().expect("differential valid");

        // 2. Fat netlist equivalent to original (Formality step).
        let r = check_equiv_with_parity(
            &nl,
            &lib,
            &sub.fat,
            &sub.fat_lib,
            Some(&sub.fat_output_parity),
            Some(&sub.fat_register_parity),
        )
        .expect("LEC ran");
        assert!(
            r.equivalent,
            "`{}`: fat netlist not equivalent: {r:?}",
            d.name
        );

        // 3. The precharge wave reaches every net.
        verify_precharge_wave(&sub).unwrap_or_else(|e| panic!("`{}`: {e}", d.name));

        // 4. Rails complementary and outputs correct.
        verify_rail_complementarity(&nl, &lib, &sub, 48, 5)
            .unwrap_or_else(|e| panic!("`{}`: {e}", d.name));
    }
}

#[test]
fn fat_netlist_never_contains_inverters() {
    let lib = Library::lib180();
    for d in designs() {
        let nl = mapped(&d, &lib);
        let sub = substitute(&nl, &lib).expect("substitution");
        let inv_count = nl.gates().iter().filter(|g| g.cell == "INV").count();
        assert_eq!(sub.removed_inverters, inv_count, "`{}`", d.name);
        assert!(
            sub.fat.gates().iter().all(|g| g.cell != "INV"),
            "`{}`: inverter survived substitution",
            d.name
        );
    }
}

#[test]
fn differential_netlist_is_positive_logic_plus_registers() {
    let lib = Library::lib180();
    for d in designs() {
        let nl = mapped(&d, &lib);
        let sub = substitute(&nl, &lib).expect("substitution");
        for g in sub.differential.gates() {
            let ok = g.cell.starts_with("AND")
                || g.cell.starts_with("OR")
                || g.cell == "BUF"
                || g.cell == "TIELO"
                || g.cell == "TIEHI"
                || g.cell == "WDDLDFF";
            assert!(
                ok,
                "`{}`: non-positive cell {} in differential netlist",
                d.name, g.cell
            );
        }
    }
}
