//! Streaming-vs-batch equivalence: the PR 8 contract that the
//! one-pass accumulators are *the same function* as the batch
//! attacks, to the last bit, at any thread count and any chunking.
//!
//! Three layers:
//!
//! 1. a property test over random trace sets and random chunkings of
//!    the raw [`DpaStream`]/[`CpaStream`] accumulators;
//! 2. golden pins of the fused campaign path on the real DES module
//!    at 1/2/8 threads × ragged chunk sizes 1/63/64/65 (straddling
//!    the 64-lane bit-slice batch width) against the materialized
//!    1-thread reference;
//! 3. the job server: a `"trace_path":"streaming"` campaign must
//!    return a payload byte-identical to the materialized one.

use secflow::cells::Library;
use secflow::crypto::dpa_module::des_dpa_design;
use secflow::dpa::attack::{dpa_attack, mtd_scan};
use secflow::dpa::cpa::{cpa_attack, cpa_mtd_scan, sbox_hamming_model};
use secflow::dpa::harness::{
    analyze_trace_set, collect_des_analysis_streaming, collect_des_traces_with, AnalysisPlan,
    CampaignAnalysis, CampaignProgram, DesTarget,
};
use secflow::dpa::streaming::{CpaStream, DpaStream};
use secflow::exec::with_threads;
use secflow::sim::{SimBackend, SimConfig};
use secflow::synth::{map_design, MapOptions};
use secflow_testkit::prop_check;

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Flattened `f64` fingerprint of a full analysis, for `to_bits`
/// comparison across thread counts and chunkings.
fn analysis_bits(a: &CampaignAnalysis) -> Vec<u64> {
    let mut out = vec![a.n as u64, a.samples_per_trace as u64, a.energy_sum.to_bits()];
    if let Some(r) = &a.dpa {
        out.push(u64::from(r.best_key));
        out.push(r.margin.to_bits());
        for g in &r.guesses {
            out.extend([u64::from(g.key), g.peak.to_bits(), g.p2p.to_bits()]);
        }
    }
    if let Some(s) = &a.dpa_mtd {
        out.push(s.mtd.map_or(u64::MAX, |m| m as u64));
        for p in &s.points {
            out.extend([
                p.traces as u64,
                u64::from(p.disclosed),
                p.correct_peak.to_bits(),
                p.best_wrong_peak.to_bits(),
            ]);
        }
    }
    if let Some(r) = &a.cpa {
        out.push(u64::from(r.best_key));
        out.push(r.margin.to_bits());
        for g in &r.guesses {
            out.extend([u64::from(g.key), g.peak_corr.to_bits()]);
        }
    }
    if let Some((pts, mtd)) = &a.cpa_mtd {
        out.push(mtd.map_or(u64::MAX, |m| m as u64));
        for p in pts {
            out.extend([
                p.traces as u64,
                u64::from(p.disclosed),
                p.correct_corr.to_bits(),
                p.best_wrong_corr.to_bits(),
            ]);
        }
    }
    out
}

/// Random trace sets, random chunkings, random thread counts: the
/// streamed DPA and CPA statistics (including MTD checkpoints) must be
/// bit-identical to the batch attacks over the same traces.
#[test]
fn streamed_statistics_equal_batch_on_random_traces() {
    prop_check!(cases: 24, seed: 0x57EA11, |g| {
        let n = g.len_in(1..40);
        let samples = g.len_in(1..12);
        let n_keys = g.len_in(1..9);
        let step = g.len_in(1..8);
        let threads = *g.choose(&[1usize, 2, 8]);
        let traces: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..samples).map(|_| f64::from(g.random::<u16>()) / 256.0).collect())
            .collect();
        let crs: Vec<u8> = (0..n).map(|_| g.random::<u8>() & 0x3f).collect();
        let select = |k: u8, i: usize| (crs[i] ^ k).count_ones() % 2 == 0;
        let model = |k: u8, i: usize| sbox_hamming_model(k, 0, crs[i]);
        let correct = (g.random::<u8>() as usize % n_keys) as u8;

        // A random partition of the traces into blocks.
        let mut cuts = vec![0usize, n];
        for _ in 0..g.len_in(0..4) {
            cuts.push(g.random_range(0..n + 1));
        }
        cuts.sort_unstable();

        with_threads(threads, || {
            let batch_dpa = dpa_attack(&traces, n_keys, select).unwrap();
            let batch_scan = mtd_scan(&traces, n_keys, correct, step, select).unwrap();
            let batch_cpa = cpa_attack(&traces, n_keys, model).unwrap();
            let (batch_pts, batch_mtd) =
                cpa_mtd_scan(&traces, n_keys, correct, step, model).unwrap();

            let mut ds = DpaStream::with_step(n_keys, step).unwrap();
            let mut cs = CpaStream::with_step(n_keys, step).unwrap();
            for w in cuts.windows(2) {
                let (lo, hi) = (w[0], w[1]);
                let block = &traces[lo..hi];
                ds.push_block(block, |k, j| select(k, lo + j)).unwrap();
                cs.push_block(block, |k, j| model(k, lo + j)).unwrap();
            }

            let stream_dpa = ds.result();
            assert_eq!(stream_dpa.best_key, batch_dpa.best_key);
            assert_eq!(stream_dpa.margin.to_bits(), batch_dpa.margin.to_bits());
            for (a, b) in stream_dpa.guesses.iter().zip(&batch_dpa.guesses) {
                assert_eq!(a.peak.to_bits(), b.peak.to_bits());
                assert_eq!(a.p2p.to_bits(), b.p2p.to_bits());
            }
            let stream_scan = ds.mtd(correct);
            assert_eq!(stream_scan.mtd, batch_scan.mtd);
            assert_eq!(stream_scan.points.len(), batch_scan.points.len());
            for (a, b) in stream_scan.points.iter().zip(&batch_scan.points) {
                assert_eq!((a.traces, a.disclosed), (b.traces, b.disclosed));
                assert_eq!(a.correct_peak.to_bits(), b.correct_peak.to_bits());
                assert_eq!(a.best_wrong_peak.to_bits(), b.best_wrong_peak.to_bits());
            }

            let stream_cpa = cs.result();
            assert_eq!(stream_cpa.best_key, batch_cpa.best_key);
            for (a, b) in stream_cpa.guesses.iter().zip(&batch_cpa.guesses) {
                assert_eq!(a.peak_corr.to_bits(), b.peak_corr.to_bits());
            }
            let (stream_pts, stream_mtd) = cs.mtd(correct);
            assert_eq!(stream_mtd, batch_mtd);
            assert_eq!(stream_pts.len(), batch_pts.len());
            for (a, b) in stream_pts.iter().zip(&batch_pts) {
                assert_eq!((a.traces, a.disclosed), (b.traces, b.disclosed));
                assert_eq!(a.correct_corr.to_bits(), b.correct_corr.to_bits());
                assert_eq!(a.best_wrong_corr.to_bits(), b.best_wrong_corr.to_bits());
            }
        });
    });
}

/// The fused streaming campaign on the real DES module, at every
/// thread count × ragged chunk size straddling the 64-lane bit-slice
/// batch width, against the materialized single-thread reference.
#[test]
fn fused_campaign_is_identical_across_threads_and_chunks() {
    let lib = Library::lib180();
    let mapped = map_design(&des_dpa_design(), &lib, &MapOptions::default()).expect("map");
    let cfg = SimConfig {
        samples_per_cycle: 50,
        noise_sigma: 0.3,
        noise_seed: 7,
        ..Default::default()
    };
    let key = 46u8;
    let n = 90usize;
    let plan = AnalysisPlan {
        n_keys: 64,
        correct_key: key,
        step: Some(10),
        dpa: true,
        cpa: true,
    };
    let target = DesTarget {
        netlist: &mapped,
        lib: &lib,
        parasitics: None,
        wddl_inputs: None,
        glitch_free: false,
        backend: SimBackend::Bitslice,
    };
    let program = CampaignProgram::build(&target, &cfg).expect("program");

    let reference = with_threads(1, || {
        let set = collect_des_traces_with(&program, &target, &cfg, key, n, 3).expect("campaign");
        analyze_trace_set(&set, &plan).expect("analysis")
    });
    let ref_bits = analysis_bits(&reference);

    for threads in [1usize, 2, 8] {
        for chunk in [1usize, 63, 64, 65] {
            let streamed = with_threads(threads, || {
                collect_des_analysis_streaming(
                    &program, &target, &cfg, key, n, 3, &plan, chunk, None,
                )
                .expect("streaming campaign")
            });
            assert_eq!(
                analysis_bits(&streamed),
                ref_bits,
                "{threads} threads, chunk {chunk}"
            );
        }
    }
    // The fingerprint helper covers every field it should.
    assert!(bits(&[reference.energy_sum]).len() == 1);
}

/// A `"trace_path":"streaming"` campaign through the job server must
/// produce a payload byte-identical to the default materialized path —
/// the wire-visible face of the accumulator equivalence.
#[test]
fn serve_streaming_payload_matches_materialized() {
    use secflow::serve::{proto::canonical_json, Engine, Request, Value};

    let tuning = r#""options":{"anneal_moves_per_gate":4,"verify":false},
        "sim":{"samples_per_cycle":40}"#;
    let mat = format!(r#"{{"job":"campaign","attack":"dpa","n":6,"seed":3,{tuning}}}"#);
    let stream = format!(
        r#"{{"job":"campaign","attack":"dpa","n":6,"seed":3,"trace_path":"streaming",{tuning}}}"#
    );
    let engine = Engine::new(256 << 20, None);
    let run = |req: &str| {
        let parsed = Request::parse(req.as_bytes()).expect("request parses");
        let canon = canonical_json(&Value::parse(req).expect("request is JSON"));
        engine.execute(&canon, &parsed).expect("job runs")
    };
    let a = run(&mat);
    let b = run(&stream);
    assert!(!a.cached_response);
    // Different canonical requests: the streaming job is a genuine
    // re-execution, not a response-cache hit...
    assert!(!b.cached_response);
    // ...yet the payload is byte-identical.
    assert_eq!(a.payload, b.payload);

    // An unknown trace_path is rejected at parse time.
    let bad = r#"{"job":"campaign","attack":"dpa","n":6,"trace_path":"mmap"}"#;
    assert!(Request::parse(bad.as_bytes()).is_err());
}
