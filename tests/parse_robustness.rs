//! Parser robustness property tests: `parse_verilog` over truncated
//! and byte-mangled corruptions of the golden DES netlists must never
//! panic — truncation always yields a typed [`NetlistError::Parse`],
//! and arbitrary byte mangling yields either a typed error or a
//! netlist that survives [`Netlist::validate`].

use secflow::netlist::{parse_verilog, NetlistError};
use secflow_testkit::fault::{garble_verilog, truncate_verilog};
use secflow_testkit::{prop_check, CaseResult, Gen};

fn golden(name: &str) -> String {
    std::fs::read_to_string(format!(
        "{}/tests/golden/{name}",
        env!("CARGO_MANIFEST_DIR")
    ))
    .expect("golden netlist")
}

#[test]
fn truncated_golden_netlists_always_give_typed_parse_errors() {
    let sources = [golden("des_regular.v"), golden("des_wddl.v")];
    prop_check(128, 0x7272_0001, |g: &mut Gen| {
        let src = g.choose(&sources);
        let e = parse_verilog(&truncate_verilog(src, g.random()), &["DFF", "WDDL_DFF"])
            .expect_err("a truncated netlist must not parse");
        assert!(matches!(e, NetlistError::Parse { .. }), "{e:?}");
        CaseResult::Pass
    });
}

#[test]
fn garbled_golden_netlists_never_panic_the_parser() {
    let sources = [golden("des_regular.v"), golden("des_wddl.v")];
    prop_check(128, 0x7272_0002, |g: &mut Gen| {
        let src = g.choose(&sources);
        let mutations = g.random_range(1..32usize);
        // Whatever the mutations produced, parsing must return: a
        // typed error, or a netlist every later stage can trust —
        // the parser re-validates before returning, so `Ok` already
        // implies structural soundness.
        let _ = parse_verilog(
            &garble_verilog(src, g.random(), mutations),
            &["DFF", "WDDL_DFF"],
        );
        CaseResult::Pass
    });
}
