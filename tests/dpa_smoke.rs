//! Integration smoke test of the full DPA pipeline: both
//! implementations simulated, attacked, and compared — a miniature of
//! the paper's §3 evaluation — plus a byte-identity determinism check
//! on the trace statistics.

use std::sync::OnceLock;

use secflow::cells::Library;
use secflow::crypto::dpa_module::{des_dpa_design, PAPER_KEY};
use secflow::dpa::attack::dpa_attack;
use secflow::dpa::harness::{collect_des_traces, DesTarget, TraceSet};
use secflow::dpa::stats::EnergyStats;
use secflow::flow::{
    run_regular_flow, run_secure_flow, FlowOptions, RegularFlowResult, SecureFlowResult,
};
use secflow::sim::{SimBackend, SimConfig};

const N_TRACES: usize = 250;
const SEED: u64 = 11;

struct Fixture {
    lib: Library,
    regular: RegularFlowResult,
    secure: SecureFlowResult,
}

/// Both flows are expensive; run each once and share across tests.
fn fixture() -> &'static Fixture {
    static CELL: OnceLock<Fixture> = OnceLock::new();
    CELL.get_or_init(|| {
        let design = des_dpa_design();
        let lib = Library::lib180();
        let opts = FlowOptions {
            anneal_moves_per_gate: 40,
            ..Default::default()
        };
        let regular = run_regular_flow(&design, &lib, &opts).expect("regular flow");
        let secure = run_secure_flow(&design, &lib, &opts).expect("secure flow");
        Fixture {
            lib,
            regular,
            secure,
        }
    })
}

fn sim_config() -> SimConfig {
    SimConfig {
        samples_per_cycle: 200,
        ..Default::default()
    }
}

fn regular_traces(n: usize, seed: u64) -> TraceSet {
    let f = fixture();
    collect_des_traces(
        &DesTarget {
            netlist: &f.regular.netlist,
            lib: &f.lib,
            parasitics: Some(&f.regular.parasitics),
            wddl_inputs: None,
            glitch_free: false,
            backend: SimBackend::Event,
        },
        &sim_config(),
        PAPER_KEY,
        n,
        seed,
    )
    .expect("campaign simulates")
}

fn secure_traces(n: usize, seed: u64) -> TraceSet {
    let f = fixture();
    collect_des_traces(
        &DesTarget {
            netlist: &f.secure.substitution.differential,
            lib: &f.secure.substitution.diff_lib,
            parasitics: Some(&f.secure.parasitics),
            wddl_inputs: Some(&f.secure.substitution.input_pairs),
            glitch_free: false,
            backend: SimBackend::Event,
        },
        &sim_config(),
        PAPER_KEY,
        n,
        seed,
    )
    .expect("campaign simulates")
}

#[test]
fn energy_signature_and_leak_direction() {
    let reg_set = regular_traces(N_TRACES, SEED);
    let sec_set = secure_traces(N_TRACES, SEED);

    let reg_stats = EnergyStats::try_of(&reg_set.energies, 1).unwrap();
    let sec_stats = EnergyStats::try_of(&sec_set.energies, 1).unwrap();

    let reg_attack = dpa_attack(&reg_set.traces, 64, reg_set.selector()).unwrap();
    let sec_attack = dpa_attack(&sec_set.traces, 64, sec_set.selector()).unwrap();
    let norm_peak = |r: &secflow::dpa::attack::DpaResult| {
        let correct = r.guesses[PAPER_KEY as usize].peak;
        let wrong = r
            .guesses
            .iter()
            .filter(|g| g.key != PAPER_KEY)
            .map(|g| g.peak)
            .fold(0.0f64, f64::max);
        correct / wrong
    };
    let reg_ratio = norm_peak(&reg_attack);
    let sec_ratio = norm_peak(&sec_attack);

    // §3: the secure design burns more total energy...
    assert!(
        sec_stats.mean > 2.0 * reg_stats.mean,
        "secure mean {} vs reference {}",
        sec_stats.mean,
        reg_stats.mean
    );
    // ...but with an order of magnitude less variation.
    assert!(
        sec_stats.nsd < reg_stats.nsd / 5.0,
        "NSD: secure {} vs reference {}",
        sec_stats.nsd,
        reg_stats.nsd
    );
    assert!(
        sec_stats.ned < reg_stats.ned / 5.0,
        "NED: secure {} vs reference {}",
        sec_stats.ned,
        reg_stats.ned
    );

    // The reference design's correct key must stand out more than the
    // secure design's (full disclosure takes ~1000+ traces; this is a
    // direction check at smoke-test size).
    assert!(
        reg_ratio > sec_ratio,
        "leak direction wrong: reference {reg_ratio} vs secure {sec_ratio}"
    );
}

/// Two campaigns with the same seed must produce byte-identical trace
/// statistics — the reproducibility guarantee every MTD figure in the
/// paper reproduction rests on.
#[test]
fn trace_statistics_are_deterministic_for_a_fixed_seed() {
    let n = 40;
    let a = regular_traces(n, SEED);
    let b = regular_traces(n, SEED);
    assert_eq!(a.ciphertexts, b.ciphertexts);
    // f64 bit-exactness, not approximate equality: the simulation and
    // the RNG are both integer-seeded and platform-independent.
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&a.energies), bits(&b.energies));
    for (ta, tb) in a.traces.iter().zip(&b.traces) {
        assert_eq!(bits(ta), bits(tb));
    }

    let sa = EnergyStats::try_of(&a.energies, 1).unwrap();
    let sb = EnergyStats::try_of(&b.energies, 1).unwrap();
    assert_eq!(sa.mean.to_bits(), sb.mean.to_bits());
    assert_eq!(sa.nsd.to_bits(), sb.nsd.to_bits());
    assert_eq!(sa.ned.to_bits(), sb.ned.to_bits());

    // A different seed must actually change the campaign.
    let c = regular_traces(n, SEED + 1);
    assert_ne!(a.ciphertexts, c.ciphertexts);
}
