//! Integration smoke test of the full DPA pipeline: both
//! implementations simulated, attacked, and compared — a miniature of
//! the paper's §3 evaluation.

use secflow::cells::Library;
use secflow::crypto::dpa_module::{des_dpa_design, PAPER_KEY};
use secflow::dpa::attack::dpa_attack;
use secflow::dpa::harness::{collect_des_traces, DesTarget};
use secflow::dpa::stats::EnergyStats;
use secflow::flow::{run_regular_flow, run_secure_flow, FlowOptions};
use secflow::sim::SimConfig;

/// Shared fixture: both implementations plus a small trace campaign.
fn trace_sets(n: usize) -> (EnergyStats, EnergyStats, f64, f64) {
    let design = des_dpa_design();
    let lib = Library::lib180();
    let opts = FlowOptions {
        anneal_moves_per_gate: 40,
        ..Default::default()
    };
    let reg = run_regular_flow(&design, &lib, &opts).expect("regular flow");
    let sec = run_secure_flow(&design, &lib, &opts).expect("secure flow");
    let cfg = SimConfig {
        samples_per_cycle: 200,
        ..Default::default()
    };

    let reg_set = collect_des_traces(
        &DesTarget {
            netlist: &reg.netlist,
            lib: &lib,
            parasitics: Some(&reg.parasitics),
            wddl_inputs: None,
            glitch_free: false,
        },
        &cfg,
        PAPER_KEY,
        n,
        11,
    );
    let sec_set = collect_des_traces(
        &DesTarget {
            netlist: &sec.substitution.differential,
            lib: &sec.substitution.diff_lib,
            parasitics: Some(&sec.parasitics),
            wddl_inputs: Some(&sec.substitution.input_pairs),
            glitch_free: false,
        },
        &cfg,
        PAPER_KEY,
        n,
        11,
    );

    let reg_attack = dpa_attack(&reg_set.traces, 64, reg_set.selector());
    let sec_attack = dpa_attack(&sec_set.traces, 64, sec_set.selector());
    let norm_peak = |r: &secflow::dpa::attack::DpaResult| {
        let correct = r.guesses[PAPER_KEY as usize].peak;
        let wrong = r
            .guesses
            .iter()
            .filter(|g| g.key != PAPER_KEY)
            .map(|g| g.peak)
            .fold(0.0f64, f64::max);
        correct / wrong
    };
    (
        EnergyStats::of(&reg_set.energies, 1),
        EnergyStats::of(&sec_set.energies, 1),
        norm_peak(&reg_attack),
        norm_peak(&sec_attack),
    )
}

#[test]
fn energy_signature_and_leak_direction() {
    let (reg_stats, sec_stats, reg_ratio, sec_ratio) = trace_sets(250);

    // §3: the secure design burns more total energy...
    assert!(
        sec_stats.mean > 2.0 * reg_stats.mean,
        "secure mean {} vs reference {}",
        sec_stats.mean,
        reg_stats.mean
    );
    // ...but with an order of magnitude less variation.
    assert!(
        sec_stats.nsd < reg_stats.nsd / 5.0,
        "NSD: secure {} vs reference {}",
        sec_stats.nsd,
        reg_stats.nsd
    );
    assert!(
        sec_stats.ned < reg_stats.ned / 5.0,
        "NED: secure {} vs reference {}",
        sec_stats.ned,
        reg_stats.ned
    );

    // The reference design's correct key must stand out more than the
    // secure design's (full disclosure takes ~1000+ traces; this is a
    // direction check at smoke-test size).
    assert!(
        reg_ratio > sec_ratio,
        "leak direction wrong: reference {reg_ratio} vs secure {sec_ratio}"
    );
}
