//! End-to-end integration tests: the Fig. 4 DES module through both
//! flows, with all verification steps and artifact round trips.

use std::sync::OnceLock;

use secflow::cells::Library;
use secflow::crypto::dpa_module::des_dpa_design;
use secflow::flow::{
    run_regular_flow, run_secure_flow, FlowOptions, RegularFlowResult, SecureFlowResult,
};
use secflow::netlist::{parse_verilog, structurally_equal, write_verilog};
use secflow::pnr::{parse_def, write_def};

fn options() -> FlowOptions {
    FlowOptions {
        // Keep placement effort modest so the test stays quick.
        anneal_moves_per_gate: 40,
        ..Default::default()
    }
}

/// Both flows are expensive; run each once and share across tests.
fn regular() -> &'static RegularFlowResult {
    static CELL: OnceLock<RegularFlowResult> = OnceLock::new();
    CELL.get_or_init(|| {
        run_regular_flow(&des_dpa_design(), &Library::lib180(), &options()).expect("regular flow")
    })
}

fn secure() -> &'static SecureFlowResult {
    static CELL: OnceLock<SecureFlowResult> = OnceLock::new();
    CELL.get_or_init(|| {
        run_secure_flow(&des_dpa_design(), &Library::lib180(), &options()).expect("secure flow")
    })
}

#[test]
fn regular_flow_on_des_module() {
    let r = regular();
    assert!(r.netlist.validate().is_ok());
    assert!(r.report.die_area_um2 > 1000.0);
    assert!(r.report.wirelength_tracks > 0);
    // Every routed net got parasitics.
    assert!(r.parasitics.total_wire_cap_ff() > 0.0);
}

#[test]
fn secure_flow_on_des_module_with_verification() {
    let s = secure();
    // The Formality step: fat netlist equivalent to the original.
    assert_eq!(s.report.lec_equivalent, Some(true));
    // WDDL structure.
    assert!(s.substitution.differential.validate().is_ok());
    assert!(s.substitution.fat.validate().is_ok());
    assert!(s.substitution.wddl.len() >= 4);
    // Matched pairs.
    let mean_mm = s
        .report
        .mean_pair_mismatch
        .expect("secure flow reports mismatch");
    assert!(mean_mm < 0.25, "mean pair mismatch {mean_mm}");
}

#[test]
fn area_and_energy_ordering_matches_paper() {
    let reg = regular();
    let sec = secure();
    let ratio = sec.report.die_area_um2 / reg.report.die_area_um2;
    assert!(
        (2.0..8.0).contains(&ratio),
        "area ratio {ratio} outside the plausible band around the paper's 3.4x"
    );
    // The differential netlist has strictly more cell area.
    assert!(sec.report.cell_area_um2 > reg.report.cell_area_um2);
}

#[test]
fn def_artifacts_round_trip() {
    let s = secure();

    // fat.def
    let text = write_def(&s.fat_routed, &s.substitution.fat);
    let parsed = parse_def(&text, &s.substitution.fat).expect("parse fat.def");
    assert_eq!(parsed.placed.cells, s.fat_routed.placed.cells);
    assert_eq!(parsed.nets, s.fat_routed.nets);

    // diff.def
    let text = write_def(&s.decomposed, &s.substitution.differential);
    let parsed = parse_def(&text, &s.substitution.differential).expect("parse diff.def");
    assert_eq!(parsed.nets.len(), s.decomposed.nets.len());
    assert_eq!(parsed.placed.input_pads, s.decomposed.placed.input_pads);
}

#[test]
fn verilog_artifacts_round_trip() {
    let s = secure();

    for (nl, seq_cells) in [
        (&s.mapped, vec!["DFF"]),
        (&s.substitution.fat, vec!["W_DFF", "W_DFFN"]),
        (&s.substitution.differential, vec!["WDDLDFF"]),
    ] {
        let text = write_verilog(nl);
        let parsed = parse_verilog(&text, &seq_cells).expect("parse");
        assert!(
            structurally_equal(nl, &parsed),
            "round trip broke `{}`",
            nl.name
        );
    }
}

#[test]
fn decomposition_geometry_invariants() {
    let s = secure();
    // Rails come in pairs: identical shape, (+1, +1) offset.
    assert_eq!(s.decomposed.nets.len(), 2 * s.fat_routed.nets.len());
    for pair in s.decomposed.nets.chunks(2) {
        let (t, f) = (&pair[0], &pair[1]);
        assert_eq!(t.wirelength(), f.wirelength());
        assert_eq!(t.segments.len(), f.segments.len());
        for (st, sf) in t.segments.iter().zip(&f.segments) {
            assert_eq!(sf.a.x - st.a.x, 1);
            assert_eq!(sf.a.y - st.a.y, 1);
            assert_eq!(st.a.layer, sf.a.layer);
        }
    }
    // Total differential wirelength = 2 rails x 2 tracks per fat unit.
    assert_eq!(
        s.decomposed.total_wirelength(),
        4 * s.fat_routed.total_wirelength()
    );
}

#[test]
fn both_flows_close_timing_at_125_mhz() {
    let cfg = secflow::sim::SimConfig::default();
    // Single-ended budget: full period minus clk-to-q and input delay.
    let budget = (cfg.period_ps - cfg.clk2q_ps - cfg.input_delay_ps) as f64;
    assert!(
        regular().report.critical_path_ps < budget,
        "reference critical path {} ps",
        regular().report.critical_path_ps
    );
    // WDDL budget: the evaluation phase only.
    let wddl_budget = (cfg.period_ps - cfg.eval_start_ps() - cfg.clk2q_ps) as f64;
    assert!(
        secure().report.critical_path_ps < wddl_budget,
        "secure critical path {} ps exceeds the {} ps evaluation phase",
        secure().report.critical_path_ps,
        wddl_budget
    );
}

#[test]
fn clock_trees_are_synthesized() {
    let rc = regular()
        .report
        .clock
        .as_ref()
        .expect("DES module has registers");
    let sc = secure().report.clock.as_ref().expect("secure flow clock");
    assert_eq!(rc.sinks, 20, "PL+PR+CL+CR = 20 registers");
    assert_eq!(sc.sinks, 20, "fat registers, one per original");
    assert!(rc.skew_ps >= 0.0 && sc.skew_ps >= 0.0);
    assert!(rc.buffers > 0 && sc.buffers > 0);
    // The WDDL register pair presents twice the clock-pin load.
    assert!(sc.total_cap_ff > rc.total_cap_ff);
}
