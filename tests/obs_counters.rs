//! Golden observability counters: the kernel-level counters the obs
//! layer reports for the seed DES design are pure functions of
//! (design, stimulus), so their campaign-wide sums must be *exactly*
//! reproducible — at any worker-thread count. These tests pin those
//! values; a drift means the simulation kernel changed behaviour, not
//! just performance.
//!
//! `exec.*` counters are deliberately NOT pinned across thread counts:
//! chunk claiming is a race by design and only the per-item work is
//! deterministic.

use std::sync::OnceLock;

use secflow::cells::Library;
use secflow::crypto::dpa_module::{des_dpa_design, PAPER_KEY};
use secflow::dpa::harness::{collect_des_traces, DesTarget};
use secflow::flow::{run_secure_flow, FlowOptions};
use secflow::netlist::Netlist;
use secflow::obs::{self, Counter, Gauge};
use secflow::sim::{SimBackend, SimConfig};
use secflow::synth::{map_design, MapOptions};

const N_TRACES: usize = 24;
const SEED: u64 = 11;

// Golden values for the campaign below (seed DES module, mapped
// regular netlist, 24 traces, seed 11, 100 samples/cycle). Regenerate
// by running the test and copying the printed actuals — but only when
// a *deliberate* kernel change explains the drift.
const GOLD_WINDOWS: u64 = 24;
const GOLD_EVENTS: u64 = 14476;
const GOLD_EVALS: u64 = 18956;
const GOLD_RISES: u64 = 5508;
const GOLD_WHEEL_PEAK: u64 = 36;

// Golden `sim.bitslice.*` counters for the same campaign through the
// bit-sliced kernel. The batch partition is a pure function of the
// campaign size ([0], [1], then 64-lane chunks), so these are
// thread-count invariant like the scalar kernel's.
const GOLD_BS_BATCHES: u64 = 3;
const GOLD_BS_LANES: u64 = 24;
const GOLD_BS_EVENTS: u64 = 5889;
const GOLD_BS_EVALS: u64 = 6954;
const GOLD_BS_RISES: u64 = 5508;
const GOLD_BS_WHEEL_PEAK: u64 = 84;

fn fixture() -> &'static (Library, Netlist) {
    static CELL: OnceLock<(Library, Netlist)> = OnceLock::new();
    CELL.get_or_init(|| {
        let lib = Library::lib180();
        let mapped =
            map_design(&des_dpa_design(), &lib, &MapOptions::default()).expect("mapping");
        (lib, mapped)
    })
}

fn campaign_report_on(threads: usize, backend: SimBackend) -> obs::Report {
    let (lib, nl) = fixture();
    let cfg = SimConfig {
        samples_per_cycle: 100,
        ..Default::default()
    };
    let target = DesTarget {
        netlist: nl,
        lib,
        parasitics: None,
        wddl_inputs: None,
        glitch_free: false,
        backend,
    };
    let ((), report) = secflow::exec::with_threads(threads, || {
        obs::capture(|| {
            collect_des_traces(&target, &cfg, PAPER_KEY, N_TRACES, SEED).expect("campaign");
        })
    });
    report
}

fn campaign_report(threads: usize) -> obs::Report {
    campaign_report_on(threads, SimBackend::Event)
}

#[test]
fn kernel_counters_match_golden_at_1_2_and_8_threads() {
    for threads in [1usize, 2, 8] {
        let r = campaign_report(threads);
        let actual = [
            ("sim.windows", r.counter(Counter::SimWindows), GOLD_WINDOWS),
            ("sim.events", r.counter(Counter::SimEvents), GOLD_EVENTS),
            ("sim.evals", r.counter(Counter::SimEvals), GOLD_EVALS),
            ("sim.rises", r.counter(Counter::SimRises), GOLD_RISES),
            (
                "sim.wheel_peak",
                r.gauge(Gauge::SimWheelPeak),
                GOLD_WHEEL_PEAK,
            ),
            ("dpa.traces", r.counter(Counter::DpaTraces), N_TRACES as u64),
        ];
        // Printed so regeneration after a deliberate kernel change is
        // a copy-paste, not a bisection.
        eprintln!("obs golden actuals at {threads} threads: {actual:?}");
        for (name, got, want) in actual {
            assert_eq!(
                got, want,
                "{name} at {threads} threads: got {got}, golden {want}"
            );
        }
    }
}

/// The bit-sliced kernel's counters are pinned the same way: batch
/// partition and per-batch work are pure functions of (design,
/// stimulus), so campaign sums cannot depend on the thread count. The
/// per-lane rise total must equal the scalar kernel's exactly — same
/// transitions, different packing.
#[test]
fn bitslice_counters_match_golden_at_1_2_and_8_threads() {
    for threads in [1usize, 2, 8] {
        let r = campaign_report_on(threads, SimBackend::Bitslice);
        let actual = [
            (
                "sim.bitslice.batches",
                r.counter(Counter::SimBitsliceBatches),
                GOLD_BS_BATCHES,
            ),
            (
                "sim.bitslice.lanes",
                r.counter(Counter::SimBitsliceLanes),
                GOLD_BS_LANES,
            ),
            (
                "sim.bitslice.events",
                r.counter(Counter::SimBitsliceEvents),
                GOLD_BS_EVENTS,
            ),
            (
                "sim.bitslice.evals",
                r.counter(Counter::SimBitsliceEvals),
                GOLD_BS_EVALS,
            ),
            (
                "sim.bitslice.rises",
                r.counter(Counter::SimBitsliceRises),
                GOLD_BS_RISES,
            ),
            (
                "sim.bitslice.wheel_peak",
                r.gauge(Gauge::SimBitsliceWheelPeak),
                GOLD_BS_WHEEL_PEAK,
            ),
            ("dpa.traces", r.counter(Counter::DpaTraces), N_TRACES as u64),
        ];
        eprintln!("bitslice golden actuals at {threads} threads: {actual:?}");
        for (name, got, want) in actual {
            assert_eq!(
                got, want,
                "{name} at {threads} threads: got {got}, golden {want}"
            );
        }
        // The scalar kernel's counters must stay silent on this path.
        assert_eq!(r.counter(Counter::SimWindows), 0);
        assert_eq!(r.counter(Counter::SimEvents), 0);
    }
}

/// `exec.*` counters must be *reported* when the pool actually runs,
/// but their split across chunks is scheduling-dependent, so only the
/// invariant part (every item done exactly once) is asserted.
#[test]
fn exec_counters_reported_but_not_pinned() {
    let r = campaign_report(2);
    assert!(r.counter(Counter::ExecRegions) >= 1);
    assert!(r.counter(Counter::ExecChunks) >= 1);
    assert_eq!(r.counter(Counter::ExecItems), N_TRACES as u64);
}

/// Every one of the ten flow stages must appear as a span under the
/// secure flow's parent — the stage taxonomy is part of the metrics
/// schema.
#[test]
fn secure_flow_covers_all_ten_stage_spans() {
    let opts = FlowOptions {
        anneal_moves_per_gate: 40,
        ..Default::default()
    };
    let (result, report) = obs::capture(|| {
        run_secure_flow(&des_dpa_design(), &Library::lib180(), &opts)
    });
    result.expect("secure flow");
    assert!(report.has_span("flow.secure"));
    for stage in [
        "parse",
        "synth",
        "substitute",
        "place",
        "route",
        "decompose",
        "extract",
        "lec",
        "railcheck",
        "sim",
    ] {
        assert!(report.has_span(stage), "missing stage span `{stage}`");
    }
    // Stage work actually ran under those spans.
    assert!(report.counter(Counter::SubstituteGates) > 0);
    assert!(report.counter(Counter::DecomposeRails) > 0);
    assert!(report.counter(Counter::RouteNets) > 0);
    assert!(report.counter(Counter::PlaceMoves) > 0);
    assert!(report.counter(Counter::ExtractNets) > 0);
    assert!(report.counter(Counter::LecOutputs) > 0);
}
