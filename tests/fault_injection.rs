//! Fault injection across every flow stage: each corrupt artifact a
//! stage can receive must produce the *expected typed* [`FlowError`]
//! variant — never a panic — and the error must carry the right stage
//! name and exit code for structured CLI reporting. The whole battery
//! runs at 1 and 4 worker threads, since several stages parallelise
//! internally and an error must surface identically either way.

use std::collections::HashSet;

use secflow::cells::Library;
use secflow::flow::{
    decompose, substitute, verify_rail_complementarity, FlowError, FlowOptions, Stage,
    SubstituteError,
};
use secflow::lec::{check_equiv, LecError};
use secflow::netlist::{parse_verilog, GateKind, Netlist, NetlistError};
use secflow::pnr::{
    place, route, GridPitch, PlaceError, PlaceOptions, RouteError, RouteOptions,
};
use secflow::sim::{simulate_single_ended, BitSim, LoadModel, SimConfig, SimError};
use secflow::synth::{map_design, Design, MapError, MapOptions};
use secflow_testkit::fault;

/// The ten stages' exit codes must be distinct and in the documented
/// 10–19 band (0 success, 1/2 usage errors).
#[test]
fn stage_exit_codes_are_distinct_and_banded() {
    let stages = [
        Stage::Parse,
        Stage::Synth,
        Stage::Substitute,
        Stage::Place,
        Stage::Route,
        Stage::Decompose,
        Stage::Extract,
        Stage::Lec,
        Stage::RailCheck,
        Stage::Sim,
    ];
    let codes: HashSet<i32> = stages.iter().map(|s| s.exit_code()).collect();
    assert_eq!(codes.len(), stages.len());
    assert!(codes.iter().all(|c| (10..=19).contains(c)));
}

/// Checks the structured report invariants every fault test relies
/// on: stage, distinct exit code, and a JSON line naming both.
fn assert_flow_error(e: impl Into<FlowError>, stage: Stage) {
    let e = e.into();
    assert_eq!(e.stage(), stage);
    assert_eq!(e.exit_code(), stage.exit_code());
    let json = e.to_json();
    assert!(
        json.starts_with(&format!(
            "{{\"error\":{{\"stage\":\"{}\",\"kind\":\"",
            stage.name()
        )),
        "bad JSON for {stage:?}: {json}"
    );
}

/// A six-gate single-ended circuit over lib180 cells, valid input for
/// every backend stage.
fn small_netlist() -> Netlist {
    let mut nl = Netlist::new("small");
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let w1 = nl.add_net("w1");
    let w2 = nl.add_net("w2");
    let y = nl.add_net("y");
    nl.add_gate("g1", "AND2", GateKind::Comb, vec![a, b], vec![w1]);
    nl.add_gate("g2", "OR2", GateKind::Comb, vec![a, w1], vec![w2]);
    nl.add_gate("g3", "INV", GateKind::Comb, vec![w2], vec![y]);
    nl.mark_output(y);
    nl
}

fn golden_src() -> String {
    std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/des_regular.v"
    ))
    .expect("golden netlist")
}

fn run_battery() {
    let lib = Library::lib180();

    // Parse: a truncated netlist is a typed parse error.
    for seed in [1, 2, 3] {
        let e = parse_verilog(&fault::truncate_verilog(&golden_src(), seed), &[])
            .expect_err("truncated source must not parse");
        assert!(matches!(e, NetlistError::Parse { .. }), "{e:?}");
        assert_flow_error(e, Stage::Parse);
    }

    // Synth: an empty cell allowlist leaves 2-input functions
    // unmappable.
    let mut d = Design::new("unmappable");
    let a = d.input("a");
    let b = d.input("b");
    let y = d.aig.and(a, b);
    d.output("y", y);
    let opts = MapOptions {
        allowed_cells: Some(HashSet::new()),
        ..Default::default()
    };
    let e = map_design(&d, &lib, &opts).expect_err("empty allowlist must be unmappable");
    assert!(matches!(e, MapError::Unmappable { .. }), "{e:?}");
    assert_flow_error(e, Stage::Synth);

    // Substitute: unknown cells and combinational loops.
    let e = substitute(&fault::unknown_cell_netlist(), &lib)
        .expect_err("unknown cell must not substitute");
    assert!(
        matches!(&e, SubstituteError::UnknownCell { cell } if cell == "NOT_A_CELL"),
        "{e:?}"
    );
    assert_flow_error(e, Stage::Substitute);
    let e = substitute(&fault::combinational_loop_netlist(), &lib)
        .expect_err("cyclic netlist must not substitute");
    assert!(matches!(e, SubstituteError::Cyclic { .. }), "{e:?}");
    assert_flow_error(e, Stage::Substitute);

    // Place: unknown cell.
    let e = place(&fault::unknown_cell_netlist(), &lib, &PlaceOptions::default())
        .expect_err("unknown cell must not place");
    assert!(matches!(&e, PlaceError::UnknownCell { cell, .. } if cell == "NOT_A_CELL"));
    assert_flow_error(e, Stage::Place);
    // Place: degenerate options.
    let e = place(
        &small_netlist(),
        &lib,
        &PlaceOptions {
            fill_factor: 0.0,
            ..Default::default()
        },
    )
    .expect_err("zero fill factor must be rejected");
    assert!(matches!(e, PlaceError::InvalidOptions { .. }));
    assert_flow_error(e, Stage::Place);

    // Route: a die shrunk under its placed cells puts pins off-grid.
    let nl = small_netlist();
    let placed = place(&nl, &lib, &PlaceOptions::default()).expect("valid placement");
    let e = route(&nl, &lib, &fault::shrink_die(&placed), &RouteOptions::default())
        .expect_err("off-die pins must not route");
    assert!(
        matches!(
            e,
            RouteError::PinOutOfBounds { .. } | RouteError::PinCollision { .. }
        ),
        "{e:?}"
    );
    assert_flow_error(e, Stage::Route);

    // Decompose: a normal-pitch routed design is not a fat design,
    // and a fat design that lost a placed cell cannot decompose.
    let sub = substitute(&nl, &lib).expect("valid substitution");
    let routed = route(&nl, &lib, &placed, &RouteOptions::default()).expect("valid routing");
    let e = decompose(&routed, &sub).expect_err("normal pitch must not decompose");
    assert!(matches!(e, secflow::flow::DecomposeError::NotFatPitch));
    assert_flow_error(e, Stage::Decompose);
    let fat_placed = place(
        &sub.fat,
        &sub.fat_lib,
        &PlaceOptions {
            pitch: GridPitch::Fat,
            ..Default::default()
        },
    )
    .expect("valid fat placement");
    let mut fat_routed = route(&sub.fat, &sub.fat_lib, &fat_placed, &RouteOptions::default())
        .expect("valid fat routing");
    fat_routed.placed.cells.pop();
    let e = decompose(&fat_routed, &sub).expect_err("dropped cell must not decompose");
    assert!(matches!(
        e,
        secflow::flow::DecomposeError::CellCountMismatch { .. }
    ));
    assert_flow_error(e, Stage::Decompose);

    // Extract: NaN / negative technology constants are refused before
    // they can poison every parasitic.
    let e = secflow::extract::try_extract(&routed, &nl, &fault::bad_technology())
        .expect_err("non-physical technology must be rejected");
    assert!(matches!(
        e,
        secflow::extract::ExtractError::BadTechnology { .. }
    ));
    assert_flow_error(e, Stage::Extract);

    // LEC: designs whose interfaces do not correspond.
    let mut other = Netlist::new("other_iface");
    let p = other.add_input("p");
    let q = other.add_net("q");
    other.add_gate("g1", "INV", GateKind::Comb, vec![p], vec![q]);
    other.mark_output(q);
    let e = check_equiv(&nl, &lib, &other, &lib, None)
        .expect_err("mismatched interfaces must not compare");
    assert!(matches!(e, LecError::PortMismatch { .. }), "{e:?}");
    assert_flow_error(e, Stage::Lec);

    // Rail check: swapping one rail primitive for its dual breaks
    // WDDL complementarity.
    let mut broken = substitute(&nl, &lib).expect("valid substitution");
    broken.differential = fault::mismatch_rail_function(&broken.differential, 0);
    let e = verify_rail_complementarity(&nl, &lib, &broken, 4, 11)
        .expect_err("swapped rails must fail verification");
    assert_flow_error(e, Stage::RailCheck);

    // Sim: a combinational loop has no evaluation order, and an
    // unknown cell has no power model.
    let cfg = SimConfig {
        samples_per_cycle: 8,
        ..Default::default()
    };
    let vectors = vec![vec![true]];
    let e = simulate_single_ended(
        &fault::combinational_loop_netlist(),
        &lib,
        None,
        &cfg,
        &[vec![]],
    )
    .expect_err("cyclic netlist must not simulate");
    assert!(matches!(e, SimError::CombinationalCycle { .. }), "{e:?}");
    assert_flow_error(e, Stage::Sim);
    let e = simulate_single_ended(&fault::unknown_cell_netlist(), &lib, None, &cfg, &vectors)
        .expect_err("unknown cell must not simulate");
    assert!(
        matches!(&e, SimError::UnknownCell { cell, .. } if cell == "NOT_A_CELL"),
        "{e:?}"
    );
    assert_flow_error(e, Stage::Sim);

    // The bit-sliced backend goes through the same load/compile
    // pipeline and must surface identical typed errors.
    let bit_build = |nl: &Netlist| {
        LoadModel::try_build(nl, &lib, None)
            .and_then(|load| BitSim::build(nl, &lib, &load, &cfg).map(|_| ()))
    };
    let e = bit_build(&fault::combinational_loop_netlist())
        .expect_err("cyclic netlist must not compile for bitslice");
    assert!(matches!(e, SimError::CombinationalCycle { .. }), "{e:?}");
    assert_flow_error(e, Stage::Sim);
    let e = bit_build(&fault::unknown_cell_netlist())
        .expect_err("unknown cell must not compile for bitslice");
    assert!(
        matches!(&e, SimError::UnknownCell { cell, .. } if cell == "NOT_A_CELL"),
        "{e:?}"
    );
    assert_flow_error(e, Stage::Sim);
    // Waveform capture is an event-backend feature; the bitslice build
    // refuses it with a typed error rather than silently ignoring it.
    let nl = small_netlist();
    let wave_cfg = SimConfig {
        record_waveform: true,
        ..cfg.clone()
    };
    let load = LoadModel::try_build(&nl, &lib, None).expect("valid load");
    let e = BitSim::build(&nl, &lib, &load, &wave_cfg).expect_err("waveform must be refused");
    assert!(matches!(e, SimError::UnsupportedConfig { .. }), "{e:?}");
    assert_flow_error(e, Stage::Sim);
}

#[test]
fn every_stage_fault_is_a_typed_error_at_1_thread() {
    secflow::exec::with_threads(1, run_battery);
}

#[test]
fn every_stage_fault_is_a_typed_error_at_4_threads() {
    secflow::exec::with_threads(4, run_battery);
}

/// A corrupt netlist must fail the *parse* stage of the secure flow
/// without poisoning the process: after the typed failure, a valid
/// flow on the same thread still succeeds end-to-end.
#[test]
fn failed_stage_does_not_poison_subsequent_flows() {
    let lib = Library::lib180();
    let bad = parse_verilog(&fault::truncate_verilog(&golden_src(), 5), &[]);
    assert!(bad.is_err());
    let mut d = Design::new("after_fault");
    let a = d.input("a");
    let b = d.input("b");
    let y = d.aig.and(a, b);
    d.output("y", y);
    let secure = secflow::flow::run_secure_flow(&d, &lib, &FlowOptions::default())
        .expect("valid flow after a fault");
    assert!(secure.report.die_area_um2 > 0.0);
}
