//! Golden-trace regression gate for the compiled simulation kernel.
//!
//! `tests/golden/kernel_{se,wddl}.hex` hold every trace sample and
//! per-encryption energy of a small noise-free DES campaign, captured
//! as raw `f64::to_bits` hex from the original per-window engine. The
//! compiled kernel must reproduce them bit-for-bit at 1, 2 and 8
//! threads — any engine change that perturbs a single mantissa bit of
//! a single sample fails here and must be reviewed by regenerating the
//! goldens (`cargo run --example gen_golden_kernel`).

use std::fs;
use std::path::Path;

use secflow::cells::Library;
use secflow::crypto::dpa_module::des_dpa_design;
use secflow::dpa::harness::{collect_des_traces, DesTarget};
use secflow::exec::with_threads;
use secflow::flow::substitute;
use secflow::sim::{SimBackend, SimConfig};
use secflow::synth::{map_design, MapOptions};

/// Parsed golden file: per-encryption `(energy_bits, trace_bits)`.
fn load_golden(name: &str) -> Vec<(u64, Vec<u64>)> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    let text = fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let mut energies = Vec::new();
    let mut traces = Vec::new();
    for line in text.lines() {
        let mut parts = line.split_whitespace();
        let kind = parts.next().expect("line kind");
        let idx: usize = parts.next().expect("index").parse().expect("index");
        let words: Vec<u64> = parts
            .map(|w| u64::from_str_radix(w, 16).expect("hex word"))
            .collect();
        match kind {
            "energy" => {
                assert_eq!(idx, energies.len(), "energy lines out of order");
                energies.push(words[0]);
            }
            "trace" => {
                assert_eq!(idx, traces.len(), "trace lines out of order");
                traces.push(words);
            }
            other => panic!("unknown golden line kind `{other}`"),
        }
    }
    assert_eq!(energies.len(), traces.len(), "malformed golden file");
    energies.into_iter().zip(traces).collect()
}

fn check(golden: &str, target: &DesTarget<'_>) {
    let cfg = SimConfig {
        samples_per_cycle: 50,
        ..Default::default()
    };
    let expect = load_golden(golden);
    for threads in [1usize, 2, 8] {
        let set = with_threads(threads, || collect_des_traces(target, &cfg, 46, 6, 7).unwrap());
        assert_eq!(set.traces.len(), expect.len(), "{golden}: trace count");
        for (i, (energy_bits, trace_bits)) in expect.iter().enumerate() {
            assert_eq!(
                set.energies[i].to_bits(),
                *energy_bits,
                "{golden}: energy {i} at {threads} threads"
            );
            let got: Vec<u64> = set.traces[i].iter().map(|s| s.to_bits()).collect();
            assert_eq!(&got, trace_bits, "{golden}: trace {i} at {threads} threads");
        }
    }
}

#[test]
fn single_ended_campaign_matches_golden_at_all_thread_counts() {
    let lib = Library::lib180();
    let mapped = map_design(&des_dpa_design(), &lib, &MapOptions::default()).expect("mapping");
    check(
        "kernel_se.hex",
        &DesTarget {
            netlist: &mapped,
            lib: &lib,
            parasitics: None,
            wddl_inputs: None,
            glitch_free: false,
            backend: SimBackend::Event,
        },
    );
}

#[test]
fn wddl_campaign_matches_golden_at_all_thread_counts() {
    let lib = Library::lib180();
    let mapped = map_design(&des_dpa_design(), &lib, &MapOptions::default()).expect("mapping");
    let sub = substitute(&mapped, &lib).expect("substitution");
    check(
        "kernel_wddl.hex",
        &DesTarget {
            netlist: &sub.differential,
            lib: &sub.diff_lib,
            parasitics: None,
            wddl_inputs: Some(&sub.input_pairs),
            glitch_free: false,
            backend: SimBackend::Event,
        },
    );
}
