//! End-to-end tests of the persistent job server (`secflow-serve`).
//!
//! Two contracts matter more than anything else here:
//!
//! 1. a warm resubmission executes **zero** flow stages — proven with
//!    the observability counters (no placement moves, no routed nets,
//!    no simulated windows), not just elapsed time;
//! 2. the warm payload is byte-identical to the cold one, over a real
//!    Unix-domain socket round trip, envelope and payload framed
//!    separately so the deterministic payload can be `cmp`'d.

use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use secflow::obs::{self, Counter};
use secflow::serve::{
    proto::canonical_json, serve, submit, Bind, Engine, Request, ServerOptions, Value,
};

/// Observability sessions are process-global; serialize the tests so
/// one test's campaign never leaks counters into another's capture.
static SERIAL: Mutex<()> = Mutex::new(());

/// A small but complete campaign request: real placement, routing,
/// extraction and simulation, shrunk to seconds.
const CAMPAIGN: &str = r#"{"job":"campaign","attack":"dpa","n":6,"seed":3,
    "options":{"anneal_moves_per_gate":4,"verify":false},
    "sim":{"samples_per_cycle":40}}"#;

fn canonical(req: &str) -> String {
    canonical_json(&Value::parse(req).expect("request is JSON"))
}

#[test]
fn warm_resubmission_executes_zero_stages() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let engine = Engine::new(256 << 20, None);
    let canon = canonical(CAMPAIGN);
    let parsed = Request::parse(CAMPAIGN.as_bytes()).expect("request parses");

    let (cold, cold_report) =
        obs::capture(|| engine.execute(&canon, &parsed).expect("cold job"));
    assert!(!cold.cached_response);
    // The cold run did real work...
    assert!(cold_report.counter(Counter::PlaceMoves) > 0, "cold run placed");
    assert!(cold_report.counter(Counter::RouteNets) > 0, "cold run routed");
    assert!(cold_report.counter(Counter::SimWindows) > 0, "cold run simulated");
    assert!(cold_report.counter(Counter::ServeCacheMisses) > 0);

    let (warm, warm_report) =
        obs::capture(|| engine.execute(&canon, &parsed).expect("warm job"));
    // ...and the warm run did none: the counters, not the clock, are
    // the proof that no stage re-executed.
    assert!(warm.cached_response, "resubmission must hit the response cache");
    assert_eq!(warm_report.counter(Counter::PlaceMoves), 0, "warm run re-placed");
    assert_eq!(warm_report.counter(Counter::RouteNets), 0, "warm run re-routed");
    assert_eq!(warm_report.counter(Counter::SimWindows), 0, "warm run re-simulated");
    assert!(warm_report.counter(Counter::ServeCacheHits) > 0);
    assert_eq!(warm_report.counter(Counter::ServeJobs), 1);
    assert_eq!(cold.payload, warm.payload, "cached payload must be byte-identical");
}

#[test]
fn unix_socket_round_trip_serves_cached_second_response() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let sock = PathBuf::from(format!(
        "{}/secflow-serve-test-{}.sock",
        std::env::temp_dir().display(),
        std::process::id()
    ));
    let opts = ServerOptions {
        bind: Bind::Unix(sock.clone()),
        cache_bytes: 256 << 20,
        cache_dir: None,
        job_workers: 1,
    };
    let server = std::thread::spawn(move || serve(&opts));

    // The acceptor binds asynchronously; poll until it answers.
    let bind = Bind::Unix(sock.clone());
    let deadline = Instant::now() + Duration::from_secs(10);
    let first = loop {
        match submit(&bind, CAMPAIGN.as_bytes()) {
            Ok(r) => break r,
            Err(e) => {
                assert!(Instant::now() < deadline, "server never came up: {e}");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    };
    assert!(first.envelope.contains("\"ok\":true"), "{}", first.envelope);
    assert!(first.envelope.contains("\"cached\":false"), "{}", first.envelope);
    assert!(!first.payload.is_empty());

    let second = submit(&bind, CAMPAIGN.as_bytes()).expect("second submission");
    assert!(second.envelope.contains("\"cached\":true"), "{}", second.envelope);
    assert_eq!(first.payload, second.payload, "responses must be byte-identical");

    // A malformed job reports the structured request error and leaves
    // the server up.
    let bad = submit(&bind, b"{\"job\":\"campaign\",\"bogus\":1}").expect("bad job");
    assert!(bad.envelope.contains("\"ok\":false"), "{}", bad.envelope);
    assert!(bad.envelope.contains("\"stage\":\"request\""), "{}", bad.envelope);
    assert!(bad.payload.is_empty());

    let down = submit(&bind, b"{\"job\":\"shutdown\"}").expect("shutdown ack");
    assert!(down.envelope.contains("\"ok\":true"), "{}", down.envelope);
    server
        .join()
        .expect("server thread")
        .expect("server exited cleanly");
    assert!(!sock.exists(), "socket file must be unlinked on shutdown");
}
