//! Differential-testing harness for the bit-sliced simulation backend.
//!
//! The bitslice kernel is only admissible because it is **bit-identical**
//! to the compiled event kernel — a fast path that silently diverges
//! would corrupt every downstream MTD/attack figure. These tests pin
//! that contract three ways:
//!
//! 1. full campaigns on the golden DES regular and WDDL netlists must
//!    match the event backend byte-for-byte (`f64::to_bits`) at 1, 2
//!    and 8 worker threads;
//! 2. ragged campaign sizes (1, 63, 64, 65, 2500 — non-multiples of
//!    the 64-lane width) must match exactly, proving dead-lane masking
//!    never leaks into the live lanes;
//! 3. a property check over random small netlists and random stimuli
//!    compares per-cycle toggle vectors and traces lane by lane.

use secflow::cells::Library;
use secflow::crypto::dpa_module::{des_dpa_design, PAPER_KEY};
use secflow::dpa::harness::{collect_des_traces, DesTarget, TraceSet};
use secflow::exec::with_threads;
use secflow::flow::substitute;
use secflow::netlist::{GateKind, NetId, Netlist};
use secflow::sim::{
    BitScratch, BitSim, CompiledSim, EngineScratch, LoadModel, SimBackend, SimConfig,
};
use secflow::synth::{map_design, MapOptions};
use secflow_testkit::Gen;

fn assert_identical(event: &TraceSet, bitslice: &TraceSet, label: &str) {
    assert_eq!(event.ciphertexts, bitslice.ciphertexts, "{label}: ciphertexts");
    assert_eq!(
        event.samples_per_trace, bitslice.samples_per_trace,
        "{label}: samples"
    );
    for (i, (a, b)) in event.energies.iter().zip(&bitslice.energies).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{label}: energy {i}");
    }
    for (i, (a, b)) in event.traces.iter().zip(&bitslice.traces).enumerate() {
        let a: Vec<u64> = a.iter().map(|x| x.to_bits()).collect();
        let b: Vec<u64> = b.iter().map(|x| x.to_bits()).collect();
        assert_eq!(a, b, "{label}: trace {i}");
    }
}

fn campaign(target: &DesTarget<'_>, cfg: &SimConfig, n: usize, threads: usize) -> TraceSet {
    with_threads(threads, || {
        collect_des_traces(target, cfg, PAPER_KEY, n, 7).unwrap()
    })
}

#[test]
fn regular_des_campaign_is_byte_identical_at_1_2_and_8_threads() {
    let lib = Library::lib180();
    let mapped = map_design(&des_dpa_design(), &lib, &MapOptions::default()).expect("mapping");
    let target = DesTarget {
        netlist: &mapped,
        lib: &lib,
        parasitics: None,
        wddl_inputs: None,
        glitch_free: false,
        backend: SimBackend::Event,
    };
    let cfg = SimConfig {
        samples_per_cycle: 50,
        ..Default::default()
    };
    let event = campaign(&target, &cfg, 24, 1);
    for threads in [1usize, 2, 8] {
        let bs = campaign(&target.with_backend(SimBackend::Bitslice), &cfg, 24, threads);
        assert_identical(&event, &bs, &format!("regular at {threads} threads"));
    }
}

#[test]
fn wddl_des_campaign_is_byte_identical_at_1_2_and_8_threads() {
    let lib = Library::lib180();
    let mapped = map_design(&des_dpa_design(), &lib, &MapOptions::default()).expect("mapping");
    let sub = substitute(&mapped, &lib).expect("substitution");
    let target = DesTarget {
        netlist: &sub.differential,
        lib: &sub.diff_lib,
        parasitics: None,
        wddl_inputs: Some(&sub.input_pairs),
        glitch_free: false,
        backend: SimBackend::Event,
    };
    let cfg = SimConfig {
        samples_per_cycle: 50,
        ..Default::default()
    };
    let event = campaign(&target, &cfg, 24, 1);
    for threads in [1usize, 2, 8] {
        let bs = campaign(&target.with_backend(SimBackend::Bitslice), &cfg, 24, threads);
        assert_identical(&event, &bs, &format!("wddl at {threads} threads"));
    }
}

/// Noise and the glitch-free power model must also survive the
/// backend swap: noise is applied per trace *after* the kernel, keyed
/// by encryption index, so it must not observe the batching at all.
#[test]
fn noisy_and_glitch_free_campaigns_are_byte_identical() {
    let lib = Library::lib180();
    let mapped = map_design(&des_dpa_design(), &lib, &MapOptions::default()).expect("mapping");
    for glitch_free in [false, true] {
        let target = DesTarget {
            netlist: &mapped,
            lib: &lib,
            parasitics: None,
            wddl_inputs: None,
            glitch_free,
            backend: SimBackend::Event,
        };
        let cfg = SimConfig {
            samples_per_cycle: 25,
            noise_sigma: 0.35,
            noise_seed: 99,
            ..Default::default()
        };
        let event = campaign(&target, &cfg, 70, 1);
        let bs = campaign(&target.with_backend(SimBackend::Bitslice), &cfg, 70, 2);
        assert_identical(&event, &bs, &format!("noisy glitch_free={glitch_free}"));
    }
}

/// Campaign sizes straddling the 64-lane width: the dead lanes of a
/// ragged tail batch must not perturb any live lane.
#[test]
fn ragged_campaign_sizes_match_the_event_kernel() {
    let lib = Library::lib180();
    let mapped = map_design(&des_dpa_design(), &lib, &MapOptions::default()).expect("mapping");
    let target = DesTarget {
        netlist: &mapped,
        lib: &lib,
        parasitics: None,
        wddl_inputs: None,
        glitch_free: false,
        backend: SimBackend::Event,
    };
    let cfg = SimConfig {
        samples_per_cycle: 25,
        ..Default::default()
    };
    for n in [1usize, 63, 64, 65, 2500] {
        let event = campaign(&target, &cfg, n, 4);
        let bs = campaign(&target.with_backend(SimBackend::Bitslice), &cfg, n, 4);
        assert_identical(&event, &bs, &format!("n={n}"));
    }
}

/// The crosstalk adjustment depends on *per-lane* transition history
/// of coupled neighbours, the one piece of engine state a naive
/// bitslice drops. Extracted layout parasitics (with couplings) must
/// therefore also survive the backend swap byte-for-byte.
#[test]
fn wddl_campaign_with_extracted_parasitics_is_byte_identical() {
    use secflow::flow::{run_secure_flow, FlowOptions};
    let lib = Library::lib180();
    let opts = FlowOptions {
        anneal_moves_per_gate: 40,
        ..Default::default()
    };
    let sec = run_secure_flow(&des_dpa_design(), &lib, &opts).expect("secure flow");
    let sub = &sec.substitution;
    let target = DesTarget {
        netlist: &sub.differential,
        lib: &sub.diff_lib,
        parasitics: Some(&sec.parasitics),
        wddl_inputs: Some(&sub.input_pairs),
        glitch_free: false,
        backend: SimBackend::Event,
    };
    let cfg = SimConfig {
        samples_per_cycle: 50,
        ..Default::default()
    };
    let event = campaign(&target, &cfg, 12, 1);
    let bs = campaign(&target.with_backend(SimBackend::Bitslice), &cfg, 12, 2);
    assert_identical(&event, &bs, "wddl with parasitics");
}

/// Draws a random acyclic gate-level netlist over lib180 cells, with
/// an occasional DFF so register driving is exercised too.
fn random_netlist(g: &mut Gen) -> Netlist {
    const CELLS: [(&str, usize); 11] = [
        ("INV", 1),
        ("BUF", 1),
        ("NAND2", 2),
        ("NOR2", 2),
        ("AND2", 2),
        ("OR2", 2),
        ("XOR2", 2),
        ("XNOR2", 2),
        ("NAND3", 3),
        ("AOI21", 3),
        ("MUX2", 3),
    ];
    let mut nl = Netlist::new("prop");
    let n_inputs = g.len_in(1..5);
    let mut pool: Vec<NetId> = (0..n_inputs).map(|i| nl.add_input(&format!("i{i}"))).collect();
    let n_gates = g.len_in(1..14);
    for k in 0..n_gates {
        let out = nl.add_net(&format!("n{k}"));
        if g.random_bool(0.15) {
            let d = *g.choose(&pool);
            nl.add_gate(&format!("g{k}"), "DFF", GateKind::Seq, vec![d], vec![out]);
        } else {
            let &(cell, arity) = g.choose(&CELLS);
            let ins: Vec<NetId> = (0..arity).map(|_| *g.choose(&pool)).collect();
            nl.add_gate(&format!("g{k}"), cell, GateKind::Comb, ins, vec![out]);
        }
        pool.push(out);
    }
    nl.mark_output(*pool.last().unwrap());
    nl
}

/// Random netlists, random stimuli, random lane counts: per-cycle
/// toggle vectors, energies, traces and outputs must match the scalar
/// event kernel in every lane.
#[test]
fn prop_random_netlists_match_event_kernel_per_lane() {
    secflow_testkit::prop_check!(cases: 48, seed: 0xB17_511CE, |g| {
        let nl = random_netlist(g);
        let lib = Library::lib180();
        let cfg = SimConfig {
            samples_per_cycle: 20,
            ..Default::default()
        };
        let load = LoadModel::try_build(&nl, &lib, None).unwrap();
        let comp = CompiledSim::build(&nl, &lib, &load, &cfg).unwrap();
        let sim = BitSim::build(&nl, &lib, &load, &cfg).unwrap();

        let lanes = g.len_in(1..65);
        let n_cycles = g.len_in(1..6);
        let n_inputs = nl.inputs().len();
        // Per-lane boolean windows and their packed transpose.
        let windows: Vec<Vec<Vec<bool>>> = (0..lanes)
            .map(|_| {
                (0..n_cycles)
                    .map(|_| (0..n_inputs).map(|_| g.random_bool(0.5)).collect())
                    .collect()
            })
            .collect();
        let mut packed = vec![vec![0u64; n_inputs]; n_cycles];
        for (l, win) in windows.iter().enumerate() {
            for (c, v) in win.iter().enumerate() {
                for (k, &bit) in v.iter().enumerate() {
                    if bit {
                        packed[c][k] |= 1 << l;
                    }
                }
            }
        }
        let active = if lanes == 64 { !0u64 } else { (1u64 << lanes) - 1 };

        let mut bs = BitScratch::new();
        sim.run_single_ended(&mut bs, &packed, active);

        let mut es = EngineScratch::new();
        for (l, win) in windows.iter().enumerate() {
            comp.run_single_ended(&mut es, win);
            // Per-cycle toggle vector: the power model's currency.
            let toggles: Vec<u64> = (0..n_cycles).map(|c| bs.cycle_rises(c, l)).collect();
            assert_eq!(&toggles[..], es.cycle_rises(), "toggles lane {l}");
            for c in 0..n_cycles {
                assert_eq!(
                    bs.cycle_energy_fj(c, l).to_bits(),
                    es.cycle_energy_fj()[c].to_bits(),
                    "energy lane {l} cycle {c}"
                );
            }
            let want: Vec<u64> = es.trace().iter().map(|x| x.to_bits()).collect();
            let got: Vec<u64> = bs.lane_trace(l).iter().map(|x| x.to_bits()).collect();
            assert_eq!(got, want, "trace lane {l}");
            for c in 0..n_cycles {
                assert_eq!(bs.output_bit(c, 0, l), es.outputs(c)[0], "output lane {l}");
            }
        }
    });
}
