//! Cross-thread-count determinism: the §7 contract extended to the
//! parallel execution subsystem. Every parallelised stage — trace
//! campaigns, DPA, CPA, and parasitic extraction — must produce
//! byte-identical `f64` results whether it runs serially or on any
//! number of worker threads.
//!
//! `secflow::exec::with_threads` pins the thread count thread-locally,
//! so these tests are race-free even when the test harness itself runs
//! them concurrently.

use secflow::cells::Library;
use secflow::crypto::dpa_module::des_dpa_design;
use secflow::dpa::attack::{dpa_attack, mtd_scan};
use secflow::dpa::cpa::{cpa_attack, sbox_hamming_model};
use secflow::dpa::harness::{collect_des_traces, DesTarget, TraceSet};
use secflow::exec::with_threads;
use secflow::extract::{extract, Parasitics, Technology};
use secflow::pnr::{place, route, PlaceOptions, RouteOptions};
use secflow::sim::{SimBackend, SimConfig};
use secflow::synth::{map_design, MapOptions};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Campaign, single-bit DPA, and MTD scan on the mapped (pre-layout)
/// DES module: every trace sample, energy, differential-trace peak,
/// and scan point must be bit-identical at 1, 2, and 8 threads.
#[test]
fn campaign_and_dpa_are_identical_across_thread_counts() {
    let lib = Library::lib180();
    let mapped = map_design(&des_dpa_design(), &lib, &MapOptions::default()).expect("map");
    let cfg = SimConfig {
        samples_per_cycle: 60,
        noise_sigma: 0.4,
        noise_seed: 5,
        ..Default::default()
    };
    let target = DesTarget {
        netlist: &mapped,
        lib: &lib,
        parasitics: None,
        wddl_inputs: None,
        glitch_free: false,
        backend: SimBackend::Event,
    };

    let campaign = || -> TraceSet { collect_des_traces(&target, &cfg, 46, 24, 9).unwrap() };
    let reference = with_threads(1, campaign);
    let ref_attack = with_threads(1, || {
        dpa_attack(&reference.traces, 64, reference.selector()).unwrap()
    });
    let ref_scan = with_threads(1, || {
        mtd_scan(&reference.traces, 64, 46, 10, reference.selector()).unwrap()
    });

    for t in THREAD_COUNTS {
        let set = with_threads(t, campaign);
        assert_eq!(set.ciphertexts, reference.ciphertexts, "{t} threads");
        assert_eq!(
            bits(&set.energies),
            bits(&reference.energies),
            "{t} threads"
        );
        for (a, b) in set.traces.iter().zip(&reference.traces) {
            assert_eq!(bits(a), bits(b), "{t} threads");
        }

        let attack = with_threads(t, || dpa_attack(&set.traces, 64, set.selector()).unwrap());
        assert_eq!(attack.best_key, ref_attack.best_key, "{t} threads");
        for (a, b) in attack.guesses.iter().zip(&ref_attack.guesses) {
            assert_eq!(a.peak.to_bits(), b.peak.to_bits(), "{t} threads");
            assert_eq!(a.p2p.to_bits(), b.p2p.to_bits(), "{t} threads");
        }

        let scan = with_threads(t, || mtd_scan(&set.traces, 64, 46, 10, set.selector()).unwrap());
        assert_eq!(scan.mtd, ref_scan.mtd, "{t} threads");
        for (a, b) in scan.points.iter().zip(&ref_scan.points) {
            assert_eq!(a.traces, b.traces, "{t} threads");
            assert_eq!(a.disclosed, b.disclosed, "{t} threads");
            assert_eq!(
                a.correct_peak.to_bits(),
                b.correct_peak.to_bits(),
                "{t} threads"
            );
            assert_eq!(
                a.best_wrong_peak.to_bits(),
                b.best_wrong_peak.to_bits(),
                "{t} threads"
            );
        }
    }
}

/// Per-net R, ground C, and every coupling entry of the extractor must
/// be bit-identical at any thread count: couplings are accumulated per
/// coordinate in parallel and reduced with a fixed-shape tree sum.
#[test]
fn extraction_is_identical_across_thread_counts() {
    let lib = Library::lib180();
    let mapped = map_design(&des_dpa_design(), &lib, &MapOptions::default()).expect("map");
    let placed = place(
        &mapped,
        &lib,
        &PlaceOptions {
            anneal_moves_per_gate: 20,
            ..Default::default()
        },
    )
    .expect("place");
    let routed = route(&mapped, &lib, &placed, &RouteOptions::default()).expect("route");
    let tech = Technology::default();

    let reference: Parasitics = with_threads(1, || extract(&routed, &mapped, &tech));
    for t in THREAD_COUNTS {
        let p = with_threads(t, || extract(&routed, &mapped, &tech));
        assert_eq!(p.nets.len(), reference.nets.len());
        for (a, b) in p.nets.iter().zip(&reference.nets) {
            assert_eq!(a.r_ohm.to_bits(), b.r_ohm.to_bits(), "{t} threads");
            assert_eq!(
                a.c_ground_ff.to_bits(),
                b.c_ground_ff.to_bits(),
                "{t} threads"
            );
            assert_eq!(a.couplings.len(), b.couplings.len(), "{t} threads");
            for (&(na, ca), &(nb, cb)) in a.couplings.iter().zip(&b.couplings) {
                assert_eq!(na, nb, "{t} threads");
                assert_eq!(ca.to_bits(), cb.to_bits(), "{t} threads");
            }
        }
    }
}

/// CPA peak correlations on synthetic traces must be bit-identical at
/// any thread count (parallel over the 64 key guesses).
#[test]
fn cpa_is_identical_across_thread_counts() {
    let mut state = 3u64;
    let mut traces = Vec::new();
    let mut crs = Vec::new();
    for _ in 0..150 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let cr = ((state >> 33) & 0x3f) as u8;
        crs.push(cr);
        let hw = f64::from(secflow::crypto::des::sbox(0, cr ^ 21).count_ones());
        let mut t = vec![0.5; 8];
        t[3] += 0.25 * hw;
        t[6] += ((state >> 7) & 31) as f64 * 0.01;
        traces.push(t);
    }

    let reference = with_threads(1, || {
        cpa_attack(&traces, 64, |k, i| sbox_hamming_model(k, 0, crs[i])).unwrap()
    });
    for t in THREAD_COUNTS {
        let r = with_threads(t, || {
            cpa_attack(&traces, 64, |k, i| sbox_hamming_model(k, 0, crs[i])).unwrap()
        });
        assert_eq!(r.best_key, reference.best_key, "{t} threads");
        assert_eq!(
            r.margin.to_bits(),
            reference.margin.to_bits(),
            "{t} threads"
        );
        for (a, b) in r.guesses.iter().zip(&reference.guesses) {
            assert_eq!(a.peak_corr.to_bits(), b.peak_corr.to_bits(), "{t} threads");
        }
    }
}
