//! Stability properties of the serve cache's key derivation.
//!
//! The content-addressed cache is only sound if the key is a faithful
//! fingerprint of everything a stage reads: every single-field option
//! mutation must produce a distinct key (a collision would serve a
//! stale artifact byte-for-byte as if it were correct), the encoding
//! must be bit-stable across runs and thread counts, and a golden
//! pinned hash catches any accidental change to the canonical
//! encoding itself — an encoding change silently invalidates (or
//! worse, aliases) every on-disk cache entry.

use std::collections::HashSet;

use secflow::flow::{DecomposeStyle, FlowOptions};
use secflow::serve::{flow_options_bytes, sim_config_bytes, stage_key, CacheStage};
use secflow::sim::{SimBackend, SimConfig};

/// One mutation per [`FlowOptions`] field (nested structs included).
fn flow_option_mutations() -> Vec<(&'static str, FlowOptions)> {
    let m = |name: &'static str, f: &dyn Fn(&mut FlowOptions)| {
        let mut o = FlowOptions::default();
        f(&mut o);
        (name, o)
    };
    vec![
        m("map.cut_size", &|o| o.map.cut_size += 1),
        m("map.cuts_per_node", &|o| o.map.cuts_per_node += 1),
        m("map.allowed_cells", &|o| {
            o.map.allowed_cells = Some(HashSet::from(["nand2".to_string()]));
        }),
        m("fill_factor", &|o| o.fill_factor = 0.75),
        m("aspect_ratio", &|o| o.aspect_ratio = 1.5),
        m("anneal_moves_per_gate", &|o| o.anneal_moves_per_gate += 1),
        m("place_restarts", &|o| o.place_restarts += 1),
        m("seed", &|o| o.seed += 1),
        m("route.max_iterations", &|o| o.route.max_iterations += 1),
        m("route.via_cost", &|o| o.route.via_cost += 0.5),
        m("route.history_increment", &|o| {
            o.route.history_increment += 0.1;
        }),
        m("route.layers", &|o| o.route.layers += 1),
        m("tech.r_ohm_per_track", &|o| o.tech.r_ohm_per_track += 0.1),
        m("tech.c_ground_ff_per_track", &|o| {
            o.tech.c_ground_ff_per_track += 0.1;
        }),
        m("tech.c_coupling_ff_per_track", &|o| {
            o.tech.c_coupling_ff_per_track += 0.1;
        }),
        m("tech.coupling_range", &|o| o.tech.coupling_range += 1),
        m("tech.r_via_ohm", &|o| o.tech.r_via_ohm += 0.1),
        m("tech.c_via_ff", &|o| o.tech.c_via_ff += 0.1),
        m("decompose_style", &|o| {
            o.decompose_style = DecomposeStyle::Shielded;
        }),
        m("verify", &|o| o.verify = !o.verify),
        m("bdd_gate_limit", &|o| o.bdd_gate_limit += 1),
        m("sim_backend", &|o| o.sim_backend = SimBackend::Bitslice),
    ]
}

/// One mutation per [`SimConfig`] field.
fn sim_config_mutations() -> Vec<(&'static str, SimConfig)> {
    let m = |name: &'static str, f: &dyn Fn(&mut SimConfig)| {
        let mut c = SimConfig::default();
        f(&mut c);
        (name, c)
    };
    vec![
        m("period_ps", &|c| c.period_ps += 1),
        m("samples_per_cycle", &|c| c.samples_per_cycle += 1),
        m("vdd", &|c| c.vdd += 0.1),
        m("clk2q_ps", &|c| c.clk2q_ps += 1),
        m("input_delay_ps", &|c| c.input_delay_ps += 1),
        m("crosstalk_window_ps", &|c| c.crosstalk_window_ps += 1),
        m("noise_sigma", &|c| c.noise_sigma += 0.1),
        m("noise_seed", &|c| c.noise_seed += 1),
        m("precharge_fraction", &|c| c.precharge_fraction += 0.05),
        m("record_waveform", &|c| c.record_waveform = !c.record_waveform),
    ]
}

#[test]
fn every_flow_option_field_changes_the_key() {
    let base = stage_key(
        b"in",
        &flow_options_bytes(&FlowOptions::default()),
        CacheStage::Place,
    );
    let mut seen = vec![("base", base)];
    for (name, opts) in flow_option_mutations() {
        let key = stage_key(b"in", &flow_options_bytes(&opts), CacheStage::Place);
        for (other, prior) in &seen {
            assert_ne!(
                key, *prior,
                "mutating `{name}` collides with `{other}` — the cache \
                 would serve a stale artifact"
            );
        }
        seen.push((name, key));
    }
}

#[test]
fn every_sim_config_field_changes_the_key() {
    let base = stage_key(
        b"in",
        &sim_config_bytes(&SimConfig::default()),
        CacheStage::Traces,
    );
    let mut seen = vec![("base", base)];
    for (name, cfg) in sim_config_mutations() {
        let key = stage_key(b"in", &sim_config_bytes(&cfg), CacheStage::Traces);
        for (other, prior) in &seen {
            assert_ne!(key, *prior, "mutating `{name}` collides with `{other}`");
        }
        seen.push((name, key));
    }
}

#[test]
fn one_byte_input_edits_change_the_key() {
    let opts = flow_options_bytes(&FlowOptions::default());
    let netlist = b"module m(a, y); inv u1 (.a(a), .y(y)); endmodule";
    let base = stage_key(netlist, &opts, CacheStage::Parse);
    for i in 0..netlist.len() {
        let mut edited = netlist.to_vec();
        edited[i] ^= 1;
        assert_ne!(
            stage_key(&edited, &opts, CacheStage::Parse),
            base,
            "flipping byte {i} did not change the key"
        );
    }
}

#[test]
fn keys_are_invariant_across_thread_counts() {
    // The key is a pure function of its inputs — no global state, no
    // pointer identity, no thread-local anything. Derive it under
    // different worker pools and in spawned threads; all must agree.
    let derive = || {
        stage_key(
            b"builtin:des_dpa",
            &flow_options_bytes(&FlowOptions::default()),
            CacheStage::Map,
        )
    };
    let base = derive();
    for threads in [1usize, 4] {
        let key = secflow::exec::with_threads(threads, derive);
        assert_eq!(key, base, "key drifted at {threads} threads");
    }
    let spawned = std::thread::spawn(derive).join().expect("thread");
    assert_eq!(spawned, base);
}

#[test]
fn golden_pinned_hashes() {
    // Frozen canonical-encoding fingerprints. If one of these
    // assertions fails, the encoding changed: every cache entry
    // persisted by an older build is now unreachable (or worse,
    // aliased). That can be a deliberate choice — then re-pin these
    // constants in the same commit — but never an accident.
    let opts = flow_options_bytes(&FlowOptions::default());
    assert_eq!(
        stage_key(b"builtin:des_dpa", &opts, CacheStage::Map).to_hex(),
        "d284fe521026ed6fdbb7393c7ef7db75",
    );
    assert_eq!(
        stage_key(b"builtin:des_dpa/secure", &opts, CacheStage::Place).to_hex(),
        "106d171c996efae197648b5f37fc30f0",
    );
    let cfg = sim_config_bytes(&SimConfig::default());
    assert_eq!(
        stage_key(b"builtin:des_dpa/regular", &cfg, CacheStage::Traces).to_hex(),
        "3833b3b994e1194093940f558c0af81c",
    );
    // And the raw SipHash-2-4 lanes under the empty message: pins the
    // hash function itself, independent of the encodings above.
    assert_eq!(
        secflow::serve::ContentHash::of(b"").to_hex(),
        "c04490a8ba982b3577a79a85d26efe07"
    );
}
