//! Mount the paper's Differential Power Analysis against both
//! implementations of the Fig. 4 DES module.
//!
//! This is a condensed version of the full Fig. 6 experiment
//! (`cargo run --release -p secflow-bench --bin exp_fig6_mtd` runs the
//! 2000-trace campaign).
//!
//! Run with: `cargo run --release --example dpa_attack [n_traces]`

use secflow::cells::Library;
use secflow::crypto::dpa_module::{des_dpa_design, PAPER_KEY};
use secflow::dpa::attack::mtd_scan;
use secflow::dpa::harness::{collect_des_traces, DesTarget};
use secflow::flow::{run_regular_flow, run_secure_flow, FlowOptions};
use secflow::sim::{SimBackend, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(600);

    let design = des_dpa_design();
    let lib = Library::lib180();
    let opts = FlowOptions::default();

    eprintln!("running the regular flow...");
    let regular = run_regular_flow(&design, &lib, &opts)?;
    eprintln!("running the secure flow...");
    let secure = run_secure_flow(&design, &lib, &opts)?;

    let cfg = SimConfig::default();
    let step = (n / 20).max(10);

    for (name, target) in [
        (
            "regular",
            DesTarget {
                netlist: &regular.netlist,
                lib: &lib,
                parasitics: Some(&regular.parasitics),
                wddl_inputs: None,
                glitch_free: false,
                backend: SimBackend::Event,
            },
        ),
        (
            "secure",
            DesTarget {
                netlist: &secure.substitution.differential,
                lib: &secure.substitution.diff_lib,
                parasitics: Some(&secure.parasitics),
                wddl_inputs: Some(&secure.substitution.input_pairs),
                glitch_free: false,
                backend: SimBackend::Event,
            },
        ),
    ] {
        eprintln!("simulating {n} encryptions on the {name} implementation...");
        let set = collect_des_traces(&target, &cfg, PAPER_KEY, n, 1).expect("campaign simulates");
        let scan = mtd_scan(&set.traces, 64, PAPER_KEY, step, set.selector()).expect("mtd scan");
        match scan.mtd {
            Some(m) => println!("{name}: key {PAPER_KEY} DISCLOSED after {m} measurements"),
            None => println!("{name}: key NOT disclosed within {n} measurements"),
        }
        let last = scan.points.last().expect("scan points");
        println!(
            "  final correct-key peak {:.3} vs best wrong-key peak {:.3}",
            last.correct_peak, last.best_wrong_peak
        );
    }
    Ok(())
}
