//! Fig. 2 in code: derive the WDDL compound cells from the base
//! standard cell library and print their structure — including the
//! AOI32 the paper uses as its example.
//!
//! Run with: `cargo run --release --example wddl_gates`

use secflow::cells::{isop, Library};
use secflow::flow::WddlLibrary;

fn main() {
    let base = Library::lib180();
    let mut wddl = WddlLibrary::new(&base);
    let n = wddl.derive_base_cells();
    println!(
        "derived {n} WDDL compound cells from the {}-cell base library \
         (the paper's vendor library yields 128)\n",
        base.cells().len()
    );

    println!(
        "{:<8} {:>6} {:>7} {:>9} {:>10}  covers (true | false)",
        "cell", "prims", "tracks", "area um2", "overhead"
    );
    for (cell, tt) in base.comb_cells() {
        let idx = wddl.compound_for(tt);
        let c = wddl.compound(idx);
        let t_cover = isop(tt);
        let f_cover = isop(&tt.not());
        println!(
            "{:<8} {:>6} {:>7} {:>9.1} {:>9.1}x  {} | {}",
            cell.name(),
            c.primitive_count,
            c.diff_width_tracks,
            c.diff_area_um2,
            c.diff_area_um2 / cell.area_um2(),
            t_cover,
            f_cover,
        );
    }

    // The Fig. 2 example in detail.
    let aoi32 = base
        .by_name("AOI32")
        .expect("AOI32 in library")
        .truth_table()
        .expect("combinational");
    println!("\nFig. 2 — the WDDL AOI32 compound:");
    println!("  single-ended: Y = NOT(A·B·C + D·E)");
    println!(
        "  true rail  = {}   (negative literals read the false rails)",
        isop(aoi32)
    );
    println!("  false rail = {}", isop(&aoi32.not()));
    let idx = wddl.compound_for(aoi32);
    let c = wddl.compound(idx);
    println!(
        "  compound: {} primitive gates, {} tracks wide, {:.1} um2",
        c.primitive_count, c.diff_width_tracks, c.diff_area_um2
    );
}
