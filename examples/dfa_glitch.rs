//! §4.3 demo: inject clock glitches into a WDDL design and watch the
//! redundant `(0, 0)` encoding raise the alarm before wrong data is
//! used.
//!
//! Run with: `cargo run --release --example dfa_glitch`

use secflow::cells::Library;
use secflow::crypto::dpa_module::des_dpa_design;
use secflow::dpa::dfa::glitch_sweep;
use secflow::flow::{run_secure_flow, FlowOptions};
use secflow::sim::SimConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = des_dpa_design();
    let lib = Library::lib180();
    eprintln!("running the secure flow...");
    let secure = run_secure_flow(&design, &lib, &FlowOptions::default())?;
    let sub = &secure.substitution;

    // A short burst of random-ish plaintexts.
    let vectors: Vec<Vec<bool>> = (0..24u32)
        .map(|c| {
            (0..16)
                .map(|i| (c.wrapping_mul(2654435761) >> i) & 1 == 1)
                .collect()
        })
        .collect();

    let cfg = SimConfig::default();
    let points = glitch_sweep(
        &sub.differential,
        &sub.diff_lib,
        Some(&secure.parasitics),
        &cfg,
        &sub.input_pairs,
        &vectors,
        &[0.5, 0.75, 0.9, 0.97],
    )
    .expect("WDDL netlist simulates");

    println!(
        "{:>12} {:>8} {:>10} {:>9}",
        "eval phase", "alarms", "corrupted", "caught"
    );
    for p in &points {
        println!(
            "{:>11.0}% {:>8} {:>10} {:>9}",
            (1.0 - p.precharge_fraction) * 100.0,
            p.alarms,
            p.corrupted_outputs,
            if p.corrupted_outputs == 0 {
                "-"
            } else if p.faults_detected {
                "yes"
            } else {
                "NO"
            }
        );
    }
    assert!(
        points
            .iter()
            .all(|p| p.corrupted_outputs == 0 || p.faults_detected),
        "a fault escaped the WDDL alarm"
    );
    println!("\nevery glitch-induced fault was flagged by an invalid (0,0) register input");
    Ok(())
}
