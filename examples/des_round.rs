//! A realistically sized cryptographic datapath through the secure
//! flow: one full DES Feistel round (expansion, eight S-boxes,
//! permutation P) — the datapath the paper's Fig. 4 DPA module is
//! extracted from.
//!
//! By default this runs synthesis, cell substitution and the WDDL
//! verification steps; pass `--pnr` to also place, route and decompose
//! (a few minutes).
//!
//! Run with: `cargo run --release --example des_round [--pnr]`

use secflow::cells::Library;
use secflow::crypto::des_round::des_round_design;
use secflow::flow::{
    run_secure_flow, substitute, verify_precharge_wave, verify_rail_complementarity, FlowOptions,
};
use secflow::lec::check_equiv_random_with_parity;
use secflow::netlist::NetlistStats;
use secflow::synth::{map_design, MapOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let full_pnr = std::env::args().any(|a| a == "--pnr");
    let design = des_round_design();
    let lib = Library::lib180();

    eprintln!("mapping one full DES round...");
    let mapped = map_design(&design, &lib, &MapOptions::default())?;
    println!("mapped: {}", NetlistStats::of(&mapped));

    eprintln!("running cell substitution...");
    let sub = substitute(&mapped, &lib)?;
    println!(
        "fat netlist: {} cells; differential netlist: {}; {} WDDL compounds, {} inverters removed",
        sub.fat.gate_count(),
        NetlistStats::of(&sub.differential),
        sub.wddl.len(),
        sub.removed_inverters
    );

    eprintln!("verifying (random LEC, precharge wave, rail complementarity)...");
    let lec = check_equiv_random_with_parity(
        &mapped,
        &lib,
        &sub.fat,
        &sub.fat_lib,
        Some(&sub.fat_output_parity),
        Some(&sub.fat_register_parity),
        16,
        1,
    )?;
    println!(
        "fat-vs-original equivalence (random, 1024 vectors): {}",
        lec.equivalent
    );
    verify_precharge_wave(&sub)?;
    println!(
        "precharge wave reaches all {} nets",
        sub.differential.net_count()
    );
    verify_rail_complementarity(&mapped, &lib, &sub, 32, 7)?;
    println!("rail complementarity holds on 32 random source vectors");

    if full_pnr {
        eprintln!("running the full secure flow (place, route, decompose, extract)...");
        // A 1400-compound fat design needs more routing resources than
        // the tiny DPA module: 6 metal layers and a lower fill factor.
        let opts = FlowOptions {
            fill_factor: 0.65,
            route: secflow::pnr::RouteOptions {
                layers: 6,
                max_iterations: 200,
                ..Default::default()
            },
            anneal_moves_per_gate: 30,
            ..Default::default()
        };
        let secure = run_secure_flow(&design, &lib, &opts)?;
        println!(
            "secure layout: die {:.0} um^2, wirelength {} tracks, critical path {:.0} ps",
            secure.report.die_area_um2,
            secure.report.wirelength_tracks,
            secure.report.critical_path_ps
        );
        println!(
            "mean differential-pair mismatch: {:.2} %",
            secure.report.mean_pair_mismatch.unwrap_or(0.0) * 100.0
        );
    } else {
        println!("\n(pass --pnr to also place, route and decompose the round)");
    }
    Ok(())
}
