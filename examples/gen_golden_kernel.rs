//! Regenerates the golden simulation-kernel traces under
//! `tests/golden/`.
//!
//! A small measurement campaign (6 encryptions, 50 samples/cycle,
//! noise-free) is collected for both the single-ended mapped DES
//! module and its WDDL differential substitution, and every trace
//! sample and per-encryption energy is dumped as raw `f64::to_bits`
//! hex. `tests/golden_kernel.rs` pins the simulation kernel
//! byte-identical to these values at 1, 2 and 8 threads — so any
//! change to the event engine that perturbs even one bit of one
//! sample fails the gate and must be reviewed via this diff.
//!
//! Run from the repository root: `cargo run --example gen_golden_kernel`

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use secflow::cells::Library;
use secflow::crypto::dpa_module::des_dpa_design;
use secflow::dpa::harness::{collect_des_traces, DesTarget, TraceSet};
use secflow::flow::substitute;
use secflow::sim::{SimBackend, SimConfig};
use secflow::synth::{map_design, MapOptions};

fn render(set: &TraceSet) -> String {
    let mut out = String::new();
    for (i, (trace, energy)) in set.traces.iter().zip(&set.energies).enumerate() {
        writeln!(out, "energy {i} {:016x}", energy.to_bits()).unwrap();
        write!(out, "trace {i}").unwrap();
        for s in trace {
            write!(out, " {:016x}", s.to_bits()).unwrap();
        }
        out.push('\n');
    }
    out
}

fn main() {
    let design = des_dpa_design();
    let lib = Library::lib180();
    let mapped = map_design(&design, &lib, &MapOptions::default()).expect("mapping");
    let sub = substitute(&mapped, &lib).expect("substitution");
    let cfg = SimConfig {
        samples_per_cycle: 50,
        ..Default::default()
    };

    let se = collect_des_traces(
        &DesTarget {
            netlist: &mapped,
            lib: &lib,
            parasitics: None,
            wddl_inputs: None,
            glitch_free: false,
            backend: SimBackend::Event,
        },
        &cfg,
        46,
        6,
        7,
    )
    .expect("single-ended campaign simulates");
    let wddl = collect_des_traces(
        &DesTarget {
            netlist: &sub.differential,
            lib: &sub.diff_lib,
            parasitics: None,
            wddl_inputs: Some(&sub.input_pairs),
            glitch_free: false,
            backend: SimBackend::Event,
        },
        &cfg,
        46,
        6,
        7,
    )
    .expect("WDDL campaign simulates");

    let dir = Path::new("tests/golden");
    fs::create_dir_all(dir).expect("create tests/golden");
    fs::write(dir.join("kernel_se.hex"), render(&se)).expect("write se");
    fs::write(dir.join("kernel_wddl.hex"), render(&wddl)).expect("write wddl");
    println!(
        "wrote tests/golden/kernel_se.hex and tests/golden/kernel_wddl.hex ({} traces x {} samples each)",
        se.traces.len(),
        se.samples_per_trace,
    );
}
