//! Quickstart: take a small design through both the regular and the
//! secure digital design flow and compare the reports.
//!
//! Run with: `cargo run --release --example quickstart`

use secflow::cells::Library;
use secflow::flow::{run_regular_flow, run_secure_flow, FlowOptions};
use secflow::synth::Design;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe a little synchronous design: a 4-bit accumulator
    //    with an enable — the "logic design" step of Fig. 1.
    let mut d = Design::new("accumulator");
    let en = d.input("en");
    let din = d.input_bus("din", 4);
    let acc = d.register_bus("acc", 4);

    // acc' = en ? acc + din : acc  (ripple-carry adder)
    let mut carry = secflow::synth::Lit::FALSE;
    let mut sum = Vec::new();
    for i in 0..4 {
        let s1 = d.aig.xor(acc[i], din[i]);
        let s = d.aig.xor(s1, carry);
        let c1 = d.aig.and(acc[i], din[i]);
        let c2 = d.aig.and(s1, carry);
        carry = d.aig.or(c1, c2);
        sum.push(s);
    }
    let next: Vec<_> = acc
        .iter()
        .zip(&sum)
        .map(|(&q, &s)| d.aig.mux(en, s, q))
        .collect();
    d.set_next_bus(&acc, &next);
    d.output_bus("total", &acc);

    // 2. Run both flows.
    let lib = Library::lib180();
    let opts = FlowOptions::default();
    let regular = run_regular_flow(&d, &lib, &opts)?;
    let secure = run_secure_flow(&d, &lib, &opts)?;

    // 3. Compare.
    println!("regular flow: {}", regular.report.stats);
    println!(
        "  die {:.0} um^2, wirelength {} tracks, {} vias",
        regular.report.die_area_um2, regular.report.wirelength_tracks, regular.report.vias
    );
    println!("secure flow:  {}", secure.report.stats);
    println!(
        "  die {:.0} um^2, wirelength {} tracks, {} vias",
        secure.report.die_area_um2, secure.report.wirelength_tracks, secure.report.vias
    );
    println!(
        "  equivalence check: {:?}, {} WDDL compounds, {} inverters removed",
        secure.report.lec_equivalent,
        secure.substitution.wddl.len(),
        secure.substitution.removed_inverters
    );
    println!(
        "  mean differential-pair cap mismatch: {:.2} %",
        secure.report.mean_pair_mismatch.unwrap_or(0.0) * 100.0
    );
    println!(
        "  area overhead: {:.2}x",
        secure.report.die_area_um2 / regular.report.die_area_um2
    );
    if let (Some(rc), Some(sc)) = (&regular.report.clock, &secure.report.clock) {
        println!(
            "  clock tree: {} sinks / skew {:.0} ps (regular) vs {} sinks / skew {:.0} ps (secure)",
            rc.sinks, rc.skew_ps, sc.sinks, sc.skew_ps
        );
    }
    Ok(())
}
