//! Regenerates the golden netlists under `tests/golden/`.
//!
//! The Fig. 4 DES DPA module is mapped (regular netlist) and
//! substituted (WDDL differential netlist); both are written as
//! structural Verilog. Mapping and substitution are fully
//! deterministic, so the files only change when the mapper, the WDDL
//! library or the writer changes — and such a change must be reviewed
//! via this diff.
//!
//! Run from the repository root: `cargo run --example gen_golden`

use std::fs;
use std::path::Path;

use secflow::cells::Library;
use secflow::crypto::dpa_module::des_dpa_design;
use secflow::flow::substitute;
use secflow::netlist::write_verilog;
use secflow::synth::{map_design, MapOptions};

fn main() {
    let design = des_dpa_design();
    let lib = Library::lib180();
    let mapped = map_design(&design, &lib, &MapOptions::default()).expect("mapping");
    let sub = substitute(&mapped, &lib).expect("substitution");

    let dir = Path::new("tests/golden");
    fs::create_dir_all(dir).expect("create tests/golden");
    fs::write(dir.join("des_regular.v"), write_verilog(&mapped)).expect("write regular");
    fs::write(dir.join("des_wddl.v"), write_verilog(&sub.differential)).expect("write wddl");
    println!(
        "wrote tests/golden/des_regular.v ({} gates) and tests/golden/des_wddl.v ({} gates)",
        mapped.gate_count(),
        sub.differential.gate_count()
    );
}
