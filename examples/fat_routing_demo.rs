//! Fig. 3 in miniature: route a few gates as a fat design, decompose,
//! and print the resulting geometry — every fat wire becomes two
//! parallel rails one track apart.
//!
//! Run with: `cargo run --release --example fat_routing_demo`

use secflow::cells::Library;
use secflow::flow::{decompose, substitute};
use secflow::netlist::{GateKind, Netlist};
use secflow::pnr::{place, route, write_def, GridPitch, PlaceOptions, RouteOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The six-gate circuit of Fig. 3.
    let mut nl = Netlist::new("fig3");
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let c = nl.add_input("c");
    let w1 = nl.add_net("w1");
    let w2 = nl.add_net("w2");
    let w3 = nl.add_net("w3");
    let w4 = nl.add_net("w4");
    let w5 = nl.add_net("w5");
    let y = nl.add_net("y");
    nl.add_gate("g1", "AND2", GateKind::Comb, vec![a, b], vec![w1]);
    nl.add_gate("g2", "OR2", GateKind::Comb, vec![b, c], vec![w2]);
    nl.add_gate("g3", "NAND2", GateKind::Comb, vec![w1, w2], vec![w3]);
    nl.add_gate("g4", "XOR2", GateKind::Comb, vec![w1, c], vec![w4]);
    nl.add_gate("g5", "AOI21", GateKind::Comb, vec![w3, w4, a], vec![w5]);
    nl.add_gate("g6", "INV", GateKind::Comb, vec![w5], vec![y]);
    nl.mark_output(y);

    let lib = Library::lib180();
    let sub = substitute(&nl, &lib)?;
    println!(
        "substituted: {} original gates -> {} fat cells + {} differential primitives \
         ({} inverter removed)",
        nl.gate_count(),
        sub.fat.gate_count(),
        sub.differential.gate_count(),
        sub.removed_inverters
    );

    let placed = place(
        &sub.fat,
        &sub.fat_lib,
        &PlaceOptions {
            pitch: GridPitch::Fat,
            ..Default::default()
        },
    )?;
    let fat = route(&sub.fat, &sub.fat_lib, &placed, &RouteOptions::default())?;
    println!(
        "fat routing: {} nets, {} fat units of wire, {} vias",
        fat.nets.len(),
        fat.total_wirelength(),
        fat.total_vias()
    );

    let diff = decompose(&fat, &sub)?;
    println!(
        "decomposed:  {} rails, {} tracks of wire, {} vias",
        diff.nets.len(),
        diff.total_wirelength(),
        diff.total_vias()
    );

    // Show the DEF artifacts the paper's flow would stream out.
    println!("\n--- fat.def (excerpt) ---");
    for line in write_def(&fat, &sub.fat).lines().take(18) {
        println!("{line}");
    }
    println!("\n--- diff.def (excerpt) ---");
    for line in write_def(&diff, &sub.differential).lines().take(18) {
        println!("{line}");
    }

    // Every pair: identical shape, offset (+1, +1).
    for pair in diff.nets.chunks(2) {
        let (t, f) = (&pair[0], &pair[1]);
        assert_eq!(t.segments.len(), f.segments.len());
        assert_eq!(t.wirelength(), f.wirelength());
        for (st, sf) in t.segments.iter().zip(&f.segments) {
            assert_eq!((sf.a.x - st.a.x, sf.a.y - st.a.y), (1, 1));
        }
    }
    println!("\nall rail pairs verified: parallel, same layer, same length, 1 track apart");
    Ok(())
}
