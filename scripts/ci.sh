#!/usr/bin/env bash
# Tier-1 verification gate. Hermetic by construction: the workspace has
# zero registry dependencies, so every step runs with --offline and
# must succeed from a clean checkout with no network access.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: panic audit (library code vs allowlist) =="
python3 scripts/panic_audit.py

echo "== tier-1: release build (offline) =="
cargo build --workspace --release --offline

echo "== tier-1: test suite (offline), serial and parallel =="
for t in 1 4; do
    echo "-- SECFLOW_THREADS=$t --"
    SECFLOW_THREADS=$t cargo test -q --workspace --offline
done

echo "== tier-1: experiment smoke (Fig. 6 MTD pipeline, 150 traces, with observability) =="
cargo run --release --offline -p secflow-bench --bin exp_fig6_mtd -- --smoke \
    --obs results/OBS_fig6_smoke.json
python3 scripts/obs_schema_check.py results/OBS_fig6_smoke.json --require-stages

echo "== tier-1: observability stdout byte-identity (Fig. 3 decompose) =="
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
cargo run --release --offline -p secflow-bench --bin exp_fig3_decompose > "$tmp/plain.out"
cargo run --release --offline -p secflow-bench --bin exp_fig3_decompose -- \
    --obs "$tmp/obs.json" > "$tmp/obs.out"
python3 scripts/obs_schema_check.py --compare "$tmp/plain.out" "$tmp/obs.out"
python3 scripts/obs_schema_check.py "$tmp/obs.json"

echo "== tier-1: sim-backend stdout byte-identity (Fig. 6 smoke, event vs bitslice) =="
cargo run --release --offline -p secflow-bench --bin exp_fig6_mtd -- --smoke \
    --sim-backend event > "$tmp/event.out"
cargo run --release --offline -p secflow-bench --bin exp_fig6_mtd -- --smoke \
    --sim-backend bitslice > "$tmp/bitslice.out"
cmp "$tmp/event.out" "$tmp/bitslice.out"

echo "== tier-1: compiled-kernel bench smoke (baseline bit-equality self-check) =="
cargo bench --offline -p secflow-bench --bench flow_stages -- sim_kernel --smoke

echo "== tier-1: bit-sliced kernel bench smoke (event-kernel bit-equality self-check) =="
cargo bench --offline -p secflow-bench --bench flow_stages -- sim_bitslice --smoke

echo "== tier-1: observability overhead smoke (noop bound < 1%) =="
cargo bench --offline -p secflow-bench --bench flow_stages -- obs_overhead --smoke

echo "== tier-1: serve cache bench smoke (warm-vs-cold byte-identity self-check) =="
cargo bench --offline -p secflow-bench --bench flow_stages -- serve_cache --smoke

echo "== tier-1: million-trace MTD smoke (fused streaming + trace-store replay) =="
cargo run --release --offline -p secflow-bench --bin exp_mtd_1m -- --smoke \
    --trace-store "$tmp/mtd1m_store" > /dev/null

echo "== tier-1: streaming pipeline bench smoke (stream-vs-batch byte-identity self-check) =="
cargo bench --offline -p secflow-bench --bench flow_stages -- stream_1m --smoke

echo "== tier-1: job-server smoke (daemon, warm cache hit, byte-identical payload) =="
cargo run --release --offline -p secflow -- serve --socket "$tmp/serve.sock" \
    --cache-bytes $((64 * 1024 * 1024)) &
serve_pid=$!
for _ in $(seq 1 100); do
    [ -S "$tmp/serve.sock" ] && break
    sleep 0.1
done
req='{"job":"campaign","attack":"dpa","n":150,"seed":1,"key":46}'
cargo run --release --offline -p secflow -- submit --socket "$tmp/serve.sock" \
    --json "$req" > "$tmp/cold.out" 2> "$tmp/cold.env"
cargo run --release --offline -p secflow -- submit --socket "$tmp/serve.sock" \
    --json "$req" > "$tmp/warm.out" 2> "$tmp/warm.env"
cmp "$tmp/cold.out" "$tmp/warm.out"
grep -q '"cached":false' "$tmp/cold.env"
grep -q '"cached":true' "$tmp/warm.env"
cargo run --release --offline -p secflow -- submit --socket "$tmp/serve.sock" --shutdown \
    > /dev/null
wait "$serve_pid"

echo "tier-1 gate: OK"
