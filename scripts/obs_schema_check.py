#!/usr/bin/env python3
"""Validate secflow observability exports (results/OBS_*.json).

Checks a metrics document against the secflow-obs/1 schema: required
top-level keys, the full counter and gauge catalogs (zeros included —
the document shape is stable by contract), and well-formed span and
worker entries. If the sibling chrome trace (<stem>.trace.json) exists
it is validated too.

Extra modes used by the CI gate:

  --compare A B          assert files A and B are byte-identical
                         (stdout must not change when --obs is on)
  --require-stages       assert the metrics document contains a span
                         for every one of the ten flow stages

Usage:
  scripts/obs_schema_check.py results/OBS_fig6_smoke.json [--require-stages]
  scripts/obs_schema_check.py --compare run_a.out run_b.out
"""

import json
import sys
from pathlib import Path

SCHEMA = "secflow-obs/1"

COUNTERS = [
    "sim.windows", "sim.events", "sim.evals", "sim.rises",
    "sim.bitslice.batches", "sim.bitslice.lanes", "sim.bitslice.events",
    "sim.bitslice.evals", "sim.bitslice.rises",
    "dpa.traces", "dpa.guesses",
    "dpa.stream.blocks", "dpa.stream.traces", "dpa.stream.checkpoints",
    "place.moves", "place.accepted", "place.restarts",
    "route.nets", "route.ripups", "route.iterations",
    "extract.nets", "extract.couplings",
    "substitute.gates", "decompose.rails",
    "lec.outputs", "lec.cell_memo_hits", "lec.ite_cache_hits",
    "lec.random_rounds",
    "exec.regions", "exec.chunks", "exec.items",
    "serve.jobs", "serve.cache.hit", "serve.cache.miss", "serve.cache.evict",
]

GAUGES = [
    "sim.wheel_peak", "sim.bitslice.wheel_peak",
    "exec.region_peak_items", "lec.bdd_peak_nodes",
    "serve.queue_peak",
]

STAGES = [
    "parse", "synth", "substitute", "place", "route",
    "decompose", "extract", "lec", "railcheck", "sim",
]


def fail(msg):
    print(f"obs_schema_check: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_uint(doc, key, ctx):
    v = doc.get(key)
    if not isinstance(v, int) or isinstance(v, bool) or v < 0:
        fail(f"{ctx}: `{key}` must be a non-negative integer, got {v!r}")
    return v


def check_metrics(path, require_stages):
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, ValueError) as e:
        fail(f"{path}: unreadable or invalid JSON: {e}")

    if doc.get("schema") != SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    if not isinstance(doc.get("exp"), str) or not doc["exp"]:
        fail(f"{path}: `exp` must be a non-empty string")
    check_uint(doc, "threads", path)
    check_uint(doc, "wall_ns", path)

    for section, catalog in [("counters", COUNTERS), ("gauges", GAUGES)]:
        block = doc.get(section)
        if not isinstance(block, dict):
            fail(f"{path}: `{section}` must be an object")
        missing = [k for k in catalog if k not in block]
        if missing:
            fail(f"{path}: `{section}` missing catalog entries: {missing}")
        extra = [k for k in block if k not in catalog]
        if extra:
            fail(f"{path}: `{section}` has uncataloged entries: {extra}")
        for k in catalog:
            check_uint(block, k, f"{path}: {section}")

    spans = doc.get("spans")
    if not isinstance(spans, list):
        fail(f"{path}: `spans` must be an array")
    for s in spans:
        if not isinstance(s.get("path"), str) or not s["path"]:
            fail(f"{path}: span entry without a path: {s!r}")
        check_uint(s, "count", f"{path}: span {s.get('path')}")
        check_uint(s, "total_ns", f"{path}: span {s.get('path')}")

    workers = doc.get("workers")
    if not isinstance(workers, list):
        fail(f"{path}: `workers` must be an array")
    for w in workers:
        for k in ["region", "worker", "busy_ns", "chunks", "items"]:
            check_uint(w, k, f"{path}: worker entry")

    if require_stages:
        leaves = {s["path"].rsplit("/", 1)[-1] for s in spans}
        missing = [st for st in STAGES if st not in leaves]
        if missing:
            fail(f"{path}: missing flow-stage spans: {missing}")

    trace = Path(path).with_name(Path(path).stem + ".trace.json")
    if trace.exists():
        check_trace(trace)
    print(f"obs_schema_check: OK: {path} "
          f"({len(spans)} span paths, {len(workers)} worker records)")


def check_trace(path):
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, ValueError) as e:
        fail(f"{path}: unreadable or invalid JSON: {e}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{path}: `traceEvents` must be an array")
    for e in events:
        if e.get("ph") != "X":
            fail(f"{path}: unexpected event phase {e.get('ph')!r}")
        for k in ["name", "cat"]:
            if not isinstance(e.get(k), str):
                fail(f"{path}: event `{k}` must be a string: {e!r}")
        for k in ["ts", "dur"]:
            if not isinstance(e.get(k), (int, float)) or e[k] < 0:
                fail(f"{path}: event `{k}` must be non-negative: {e!r}")
    if doc.get("otherData", {}).get("schema") != SCHEMA:
        fail(f"{path}: otherData.schema must be {SCHEMA!r}")
    print(f"obs_schema_check: OK: {path} ({len(events)} trace events)")


def compare(a, b):
    da, db = Path(a).read_bytes(), Path(b).read_bytes()
    if da != db:
        fail(f"{a} and {b} differ ({len(da)} vs {len(db)} bytes): "
             "stdout must be byte-identical with and without --obs")
    print(f"obs_schema_check: OK: {a} == {b} ({len(da)} bytes)")


def main(argv):
    if not argv:
        print(__doc__, file=sys.stderr)
        return 2
    if argv[0] == "--compare":
        if len(argv) != 3:
            fail("--compare takes exactly two files")
        compare(argv[1], argv[2])
        return 0
    require_stages = "--require-stages" in argv
    paths = [a for a in argv if not a.startswith("--")]
    if not paths:
        fail("no metrics files given")
    for p in paths:
        check_metrics(p, require_stages)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
