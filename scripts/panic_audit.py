#!/usr/bin/env python3
"""Panic-audit gate: no unwrap()/expect()/panic! in library code.

Scans every library source file (crates/*/src and src/, excluding
bin/ directories and #[cfg(test)] modules) for `.unwrap()`,
`.expect(` and `panic!(` and fails if a site is not covered by
scripts/panic_allowlist.txt.

Allowlist format, one entry per line:

    path-substring | line-substring | justification

A finding is allowed when the entry's path-substring occurs in the
file path and the line-substring occurs in the offending line. The
gate also fails on *stale* entries that no longer match anything, so
the allowlist can only shrink as panics are converted to typed
errors.

Deliberate contract panics (`assert!`/`assert_eq!` with documented
`# Panics` sections) are out of scope: asserts state internal
invariants, while unwrap/expect/panic! on input-dependent paths are
exactly the crash class the typed FlowError layer removed.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
PATTERN = re.compile(r"\.unwrap\(\)|\.expect\(|panic!\(")
ALLOWLIST = ROOT / "scripts" / "panic_allowlist.txt"


def library_sources():
    for base in [ROOT / "src", *sorted((ROOT / "crates").glob("*/src"))]:
        for path in sorted(base.rglob("*.rs")):
            if "bin" in path.relative_to(base).parts:
                continue
            yield path


def strip_test_modules(lines):
    """Yields (lineno, line) for lines outside #[cfg(test)] items."""
    in_test = False
    entered = False  # whether the test item's first `{` was seen
    depth = 0
    pending_cfg = False
    for no, line in enumerate(lines, 1):
        stripped = line.strip()
        if not in_test:
            if stripped.startswith("#[cfg(test)]"):
                pending_cfg = True
                continue
            if pending_cfg:
                # The item the cfg applies to (a mod/fn/impl/use);
                # skip until its braces balance out. A brace-less
                # `...;` item ends on its own line.
                pending_cfg = False
                if "{" not in line and stripped.endswith(";"):
                    continue
                in_test = True
                entered = "{" in line
                depth = line.count("{") - line.count("}")
                if entered and depth <= 0:
                    in_test = False
                continue
            yield no, line
        else:
            if "{" in line:
                entered = True
            depth += line.count("{") - line.count("}")
            if entered and depth <= 0:
                in_test = False


def parse_allowlist():
    entries = []
    if not ALLOWLIST.exists():
        return entries
    for raw in ALLOWLIST.read_text().splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = [p.strip() for p in line.split("|", 2)]
        if len(parts) != 3 or not all(parts):
            sys.exit(f"panic-audit: malformed allowlist entry: {raw!r}")
        entries.append({"path": parts[0], "line": parts[1], "reason": parts[2], "hits": 0})
    return entries


def main():
    entries = parse_allowlist()
    violations = []
    for path in library_sources():
        rel = str(path.relative_to(ROOT))
        for no, line in strip_test_modules(path.read_text().splitlines()):
            code = line.split("//")[0] if line.lstrip().startswith("//") else line
            if not PATTERN.search(code):
                continue
            allowed = False
            for e in entries:
                if e["path"] in rel and e["line"] in line:
                    e["hits"] += 1
                    allowed = True
                    break
            if not allowed:
                violations.append(f"{rel}:{no}: {line.strip()}")

    ok = True
    if violations:
        ok = False
        print("panic-audit: unallowlisted panic sites in library code:")
        for v in violations:
            print(f"  {v}")
    for e in entries:
        if e["hits"] == 0:
            ok = False
            print(
                f"panic-audit: stale allowlist entry (matches nothing): "
                f"{e['path']} | {e['line']}"
            )
    if not ok:
        sys.exit(1)
    print(f"panic-audit: OK ({len(entries)} allowlisted sites)")


if __name__ == "__main__":
    main()
