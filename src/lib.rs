//! Umbrella crate re-exporting the whole secure-design-flow workspace.
pub use secflow_cells as cells;
pub use secflow_core as flow;
pub use secflow_crypto as crypto;
pub use secflow_dpa as dpa;
pub use secflow_exec as exec;
pub use secflow_extract as extract;
pub use secflow_lec as lec;
pub use secflow_netlist as netlist;
pub use secflow_obs as obs;
pub use secflow_pnr as pnr;
pub use secflow_rand as rand;
pub use secflow_serve as serve;
pub use secflow_sim as sim;
pub use secflow_synth as synth;
