//! The push-button secure design flow CLI — Fig. 1 as a command.
//!
//! Reads a mapped structural-Verilog netlist (the paper's `rtl.v`,
//! the output of logic synthesis), runs the chosen flow's backend and
//! writes all the flow artifacts to an output directory:
//!
//! ```text
//! secflow <rtl.v> --secure --out build/
//!   build/fat.v        the fat netlist (cell substitution output)
//!   build/diff.v       the differential WDDL netlist
//!   build/fat.def      the routed fat design
//!   build/diff.def     the decomposed differential design
//!   build/fat_lib.lef  fat cell abstracts
//!   build/diff_lib.lef differential library abstracts
//!   build/lib.lib      the base library (Liberty-like)
//!   build/report.txt   metrics, timings and verification results
//! ```
//!
//! `--regular` runs the reference flow instead (`layout.def` +
//! report). Options: `--fill <f>`, `--aspect <r>`, `--layers <n>`,
//! `--seed <n>`, `--spaced`, `--shielded`, `--threads <n>` (worker
//! threads for the parallel stages; default `SECFLOW_THREADS` or all
//! cores), `--restarts <n>` (independent placement-annealing
//! restarts, best HPWL wins), `--obs <path>` (write observability
//! metrics JSON there plus a chrome-trace next to it; `SECFLOW_OBS`
//! sets the same path from the environment), `--sim-backend
//! event|bitslice` (simulation kernel for downstream trace campaigns;
//! both are byte-identical).
//!
//! Two subcommands wrap the persistent job server (`secflow-serve`):
//!
//! ```text
//! secflow serve  [--socket PATH | --listen ADDR] [--cache-bytes N]
//!                [--cache-dir DIR] [--job-workers N] [--threads N]
//! secflow submit [--socket PATH | --connect ADDR]
//!                [--json TEXT | --file PATH | --shutdown | --stats]
//! ```
//!
//! `serve` runs the daemon with a content-addressed artifact cache;
//! `submit` sends one JSON job (from `--json`, a file, or stdin),
//! writes the deterministic result payload to **stdout** and the
//! envelope (status, per-job cache metrics, structured error) to
//! **stderr**, and exits with the job's stage exit code.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use secflow::cells::Library;
use secflow::flow::FlowError;
use secflow::flow::{
    run_regular_backend, run_secure_backend, DecomposeStyle, FlowOptions, FlowReport,
};
use secflow::netlist::{parse_verilog, write_verilog};
use secflow::pnr::write_def;

/// Reports a flow failure as a single structured JSON line on stderr
/// (`{"error":{"stage":...,"kind":...,"detail":...}}`) and returns the
/// failing stage's distinct exit code (10–19).
fn fail(e: FlowError) -> ExitCode {
    eprintln!("{}", e.to_json());
    ExitCode::from(u8::try_from(e.exit_code()).unwrap_or(1))
}

struct Args {
    input: PathBuf,
    out: PathBuf,
    secure: bool,
    opts: FlowOptions,
    obs: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: secflow <rtl.v> [--secure|--regular] [--out DIR] [--fill F] [--aspect R]\n\
         \x20              [--layers N] [--seed N] [--spaced|--shielded] [--no-verify]\n\
         \x20              [--threads N] [--restarts N] [--obs PATH]\n\
         \x20              [--sim-backend event|bitslice]\n\
         \x20      secflow serve  [--socket PATH | --listen ADDR] [--cache-bytes N]\n\
         \x20                     [--cache-dir DIR] [--job-workers N] [--threads N]\n\
         \x20      secflow submit [--socket PATH | --connect ADDR]\n\
         \x20                     [--json TEXT | --file PATH | --shutdown | --stats]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut input = None;
    let mut out = PathBuf::from("build");
    let mut secure = true;
    let mut obs = None;
    let mut opts = FlowOptions::default();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--secure" => secure = true,
            "--regular" => secure = false,
            "--out" => out = PathBuf::from(it.next().unwrap_or_else(|| usage())),
            "--fill" => {
                opts.fill_factor = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--aspect" => {
                opts.aspect_ratio = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--layers" => {
                opts.route.layers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--seed" => {
                opts.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--threads" => {
                let n: usize = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                secflow::exec::set_threads(n);
            }
            "--restarts" => {
                opts.place_restarts = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--sim-backend" => {
                opts.sim_backend = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--obs" => obs = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--spaced" => opts.decompose_style = DecomposeStyle::Spaced,
            "--shielded" => opts.decompose_style = DecomposeStyle::Shielded,
            "--no-verify" => opts.verify = false,
            "--help" | "-h" => usage(),
            _ if input.is_none() && !a.starts_with('-') => input = Some(PathBuf::from(a)),
            _ => usage(),
        }
    }
    // `SECFLOW_OBS` arms observability without touching the command
    // line (useful under wrappers that own the argument list).
    let obs = obs.or_else(|| {
        std::env::var("SECFLOW_OBS")
            .ok()
            .filter(|v| !v.is_empty())
            .map(PathBuf::from)
    });
    Args {
        input: input.unwrap_or_else(|| usage()),
        out,
        secure,
        opts,
        obs,
    }
}

/// Finishes the observability session on every exit path (success or
/// stage failure) and writes the metrics + chrome-trace files.
struct ObsGuard {
    path: Option<PathBuf>,
}

impl Drop for ObsGuard {
    fn drop(&mut self) {
        let Some(path) = self.path.take() else {
            return;
        };
        let Some(report) = secflow::obs::finish() else {
            return;
        };
        let threads = secflow::exec::effective_threads();
        match report.write_files("secflow", threads, &path) {
            Ok(trace) => eprintln!("wrote {} and {}", path.display(), trace.display()),
            Err(e) => eprintln!("error: failed to write {}: {e}", path.display()),
        }
    }
}

fn render_report(kind: &str, r: &FlowReport) -> String {
    let mut s = String::new();
    s.push_str(&format!("secflow {kind} flow report\n"));
    s.push_str(&format!("netlist: {}\n", r.stats));
    s.push_str(&format!("die area: {:.1} um^2\n", r.die_area_um2));
    s.push_str(&format!("cell area: {:.1} um^2\n", r.cell_area_um2));
    s.push_str(&format!(
        "wirelength: {} tracks, {} vias\n",
        r.wirelength_tracks, r.vias
    ));
    s.push_str(&format!("critical path: {:.0} ps\n", r.critical_path_ps));
    if let Some(c) = &r.clock {
        s.push_str(&format!(
            "clock tree: {} sinks, {} buffers, skew {:.1} ps, load {:.1} fF\n",
            c.sinks, c.buffers, c.skew_ps, c.total_cap_ff
        ));
    }
    if let Some(lec) = r.lec_equivalent {
        s.push_str(&format!("equivalence check: {lec}\n"));
    }
    if let Some(mm) = r.mean_pair_mismatch {
        s.push_str(&format!(
            "differential-pair mismatch: mean {:.2}%, max {:.2}%\n",
            mm * 100.0,
            r.max_pair_mismatch.unwrap_or(0.0) * 100.0
        ));
    }
    s.push_str(&format!(
        "stage times (ms): synth {:.0}, substitute {:.0}, place {:.0}, route {:.0}, \
         decompose {:.0}, extract {:.0}, verify {:.0}\n",
        r.synth_ms,
        r.substitute_ms,
        r.place_ms,
        r.route_ms,
        r.decompose_ms,
        r.extract_ms,
        r.verify_ms
    ));
    s
}

/// `secflow serve`: run the persistent job server until a `shutdown`
/// job arrives.
fn cmd_serve(args: &[String]) -> ExitCode {
    let mut opts = secflow::serve::ServerOptions::default();
    let mut it = args.iter();
    let usage = || -> ! {
        eprintln!(
            "usage: secflow serve [--socket PATH | --listen ADDR] [--cache-bytes N]\n\
             \x20                    [--cache-dir DIR] [--job-workers N] [--threads N]"
        );
        std::process::exit(2)
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => {
                opts.bind = secflow::serve::Bind::Unix(PathBuf::from(
                    it.next().unwrap_or_else(|| usage()),
                ))
            }
            "--listen" => {
                opts.bind =
                    secflow::serve::Bind::Tcp(it.next().unwrap_or_else(|| usage()).clone())
            }
            "--cache-bytes" => {
                opts.cache_bytes = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--cache-dir" => {
                opts.cache_dir = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())))
            }
            "--job-workers" => {
                opts.job_workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--threads" => {
                let n: usize = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                secflow::exec::set_threads(n);
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    match secflow::serve::serve(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: secflow serve: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `secflow submit`: send one job, print payload to stdout and the
/// envelope to stderr, and exit with the job's stage exit code.
fn cmd_submit(args: &[String]) -> ExitCode {
    let mut bind = secflow::serve::Bind::Unix(PathBuf::from("secflow.sock"));
    let mut request: Option<Vec<u8>> = None;
    let mut it = args.iter();
    let usage = || -> ! {
        eprintln!(
            "usage: secflow submit [--socket PATH | --connect ADDR]\n\
             \x20                     [--json TEXT | --file PATH | --shutdown | --stats]\n\
             (reads the request JSON from stdin when no source flag is given)"
        );
        std::process::exit(2)
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => {
                bind = secflow::serve::Bind::Unix(PathBuf::from(
                    it.next().unwrap_or_else(|| usage()),
                ))
            }
            "--connect" => {
                bind = secflow::serve::Bind::Tcp(it.next().unwrap_or_else(|| usage()).clone())
            }
            "--json" => {
                request = Some(it.next().unwrap_or_else(|| usage()).clone().into_bytes())
            }
            "--file" => {
                let path = it.next().unwrap_or_else(|| usage());
                match fs::read(path) {
                    Ok(b) => request = Some(b),
                    Err(e) => {
                        eprintln!("error: cannot read {path}: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--shutdown" => request = Some(b"{\"job\":\"shutdown\"}".to_vec()),
            "--stats" => request = Some(b"{\"job\":\"stats\"}".to_vec()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    let request = request.unwrap_or_else(|| {
        use std::io::Read;
        let mut buf = Vec::new();
        if std::io::stdin().read_to_end(&mut buf).is_err() || buf.is_empty() {
            usage();
        }
        buf
    });
    let response = match secflow::serve::submit(&bind, &request) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: secflow submit: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("{}", response.envelope);
    use std::io::Write;
    let mut stdout = std::io::stdout().lock();
    if stdout
        .write_all(&response.payload)
        .and_then(|()| {
            if response.payload.is_empty() {
                Ok(())
            } else {
                stdout.write_all(b"\n")
            }
        })
        .is_err()
    {
        return ExitCode::FAILURE;
    }
    drop(stdout);
    // The envelope carries the job's stage exit code; mirror it so
    // `submit` scripts like CLI runs.
    match secflow::serve::Value::parse(&response.envelope) {
        Ok(v) if v.get("ok").and_then(secflow::serve::Value::as_bool) == Some(true) => {
            ExitCode::SUCCESS
        }
        Ok(v) => ExitCode::from(
            v.get("exit_code")
                .and_then(secflow::serve::Value::as_u64)
                .and_then(|c| u8::try_from(c).ok())
                .unwrap_or(1),
        ),
        Err(_) => ExitCode::FAILURE,
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("serve") => return cmd_serve(&argv[1..]),
        Some("submit") => return cmd_submit(&argv[1..]),
        _ => {}
    }
    let args = parse_args();
    let _obs_guard = if args.obs.is_some() {
        secflow::obs::start();
        ObsGuard {
            path: args.obs.clone(),
        }
    } else {
        ObsGuard { path: None }
    };
    let lib = Library::lib180();

    let text = match fs::read_to_string(&args.input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", args.input.display());
            return ExitCode::FAILURE;
        }
    };
    let netlist = match parse_verilog(&text, &lib.seq_cell_names()) {
        Ok(nl) => nl,
        Err(e) => return fail(FlowError::Parse(e)),
    };
    if let Err(e) = netlist.validate() {
        return fail(FlowError::Parse(e));
    }
    if let Err(e) = fs::create_dir_all(&args.out) {
        eprintln!("error: cannot create {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }
    let write = |name: &str, data: &str| {
        let path = args.out.join(name);
        fs::write(&path, data).unwrap_or_else(|e| {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(1);
        });
        eprintln!("wrote {}", path.display());
    };
    write("lib.lib", &lib.to_liberty("lib180"));

    if args.secure {
        let result = {
            let _flow = secflow::obs::span("flow.secure");
            match run_secure_backend(netlist, &lib, &args.opts, 0.0) {
                Ok(r) => r,
                Err(e) => return fail(e),
            }
        };
        write("fat.v", &write_verilog(&result.substitution.fat));
        write("diff.v", &write_verilog(&result.substitution.differential));
        write(
            "fat.def",
            &write_def(&result.fat_routed, &result.substitution.fat),
        );
        write(
            "diff.def",
            &write_def(&result.decomposed, &result.substitution.differential),
        );
        write(
            "fat_lib.lef",
            &result.substitution.fat_lib.to_lef("fat_lib", 2),
        );
        write(
            "diff_lib.lef",
            &result.substitution.diff_lib.to_lef("diff_lib", 1),
        );
        let report = render_report("secure", &result.report);
        write("report.txt", &report);
        print!("{report}");
    } else {
        let result = {
            let _flow = secflow::obs::span("flow.regular");
            match run_regular_backend(netlist, &lib, &args.opts, 0.0) {
                Ok(r) => r,
                Err(e) => return fail(e),
            }
        };
        write("layout.def", &write_def(&result.routed, &result.netlist));
        let report = render_report("regular", &result.report);
        write("report.txt", &report);
        print!("{report}");
    }
    ExitCode::SUCCESS
}
